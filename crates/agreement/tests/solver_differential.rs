//! Differential harness for the conflict-driven decision-map solver.
//!
//! Every randomized `(model, n ≤ 4, f, r, k, constraint)` instance is
//! solved **four** ways — nogood learning on/off × symmetry (orbit
//! branching) on/off — and cross-checked against the recursive
//! chronological oracle. All five runs must return the same verdict,
//! every witness must pass independent verification against the label
//! complex, and no accepted witness may violate a nogood learned by any
//! of the runs (learned nogoods are global lemmas: "no valid decision
//! map contains all of these (vertex, value) pairs").
//!
//! Failures shrink through proptest and print the offending grid point.
//! The suite rides the CI `solver-depth` job (`RUST_MIN_STACK=262144`),
//! so the oracle — which recurses one call frame per vertex — is only
//! consulted on instances small enough for a 256 KiB stack; the
//! four-way iterative equivalence runs regardless.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use proptest::prelude::*;
use ps_agreement::{
    allowed_values, allowed_values_ss, async_task_parts, semisync_task_parts, sync_task_parts,
    task_symmetries, AgreementConstraint, DecisionMapSolver, KSetAgreement, PreparedInstance,
    SolverConfig,
};
use ps_topology::{Complex, IdComplex, Label, VertexPool};

/// Instances above this vertex count are skipped outright: the largest
/// random corners (async n = 3, f = 2, r = 2 at 7488 vertices; async
/// n = 4, f = 2, k = 2 at 756 vertices and 194k facets) would dominate
/// the suite's runtime — five full solves each, with per-facet witness
/// verification on top — without adding coverage beyond what the
/// sweep-equivalence tests and EXPERIMENTS.md E17 already exercise.
/// The bound also keeps the recursive oracle (one call frame per
/// vertex) inside the CI solver-depth job's 256 KiB stacks.
const MAX_VERTICES: usize = 700;

/// One solver run: verdict, witness (if any), and the nogoods the run
/// learned.
struct Run<V> {
    name: &'static str,
    witness: Option<BTreeMap<V, u64>>,
    nogoods: Vec<Vec<(u32, u64)>>,
}

fn run_config<V: Label>(
    name: &'static str,
    instance: &PreparedInstance<V>,
    constraint: AgreementConstraint,
    learning: bool,
) -> Run<V> {
    let mut solver = DecisionMapSolver::with_config(SolverConfig {
        learning,
        ..SolverConfig::default()
    });
    let witness = solver.solve_prepared(instance, constraint);
    Run {
        name,
        witness,
        nogoods: solver.learned_nogoods().to_vec(),
    }
}

/// Solves the instance four ways (+ oracle when small enough) and
/// asserts the equivalences. `plain` has no symmetries attached;
/// `sym` carries whatever certified symmetries the instance admits.
fn check_instance<V: Label>(
    point: &str,
    pool: &VertexPool<V>,
    id_complex: &IdComplex,
    plain: &PreparedInstance<V>,
    sym: &PreparedInstance<V>,
    constraint: AgreementConstraint,
    allowed: impl FnMut(&V) -> BTreeSet<u64> + Copy,
) -> Result<(), TestCaseError> {
    let runs = [
        run_config("learning+symmetry", sym, constraint, true),
        run_config("learning only", plain, constraint, true),
        run_config("symmetry only", sym, constraint, false),
        run_config("chronological", plain, constraint, false),
    ];
    let verdict = runs[0].witness.is_some();
    let labels = Complex::from_interned(pool, id_complex);
    for run in &runs {
        prop_assert_eq!(
            run.witness.is_some(),
            verdict,
            "verdict disagreement at {}: `{}` says {}, `{}` says {}",
            point,
            runs[0].name,
            verdict,
            run.name,
            run.witness.is_some()
        );
        if let Some(map) = &run.witness {
            prop_assert!(
                DecisionMapSolver::verify_with(&labels, map, allowed, constraint),
                "invalid witness from `{}` at {}",
                run.name,
                point
            );
        }
    }
    // the oracle recurses one frame per vertex; stay inside the CI
    // solver-depth job's 256 KiB stacks
    if plain.vertex_count() <= MAX_VERTICES {
        let mut oracle = DecisionMapSolver::new();
        let map = oracle.solve_prepared_recursive_oracle(plain, constraint);
        prop_assert_eq!(
            map.is_some(),
            verdict,
            "recursive oracle disagrees at {}: oracle {}, iterative {}",
            point,
            map.is_some(),
            verdict
        );
        if let Some(map) = &map {
            prop_assert!(
                DecisionMapSolver::verify_with(&labels, map, allowed, constraint),
                "invalid oracle witness at {}",
                point
            );
        }
    }
    // learned nogoods are global lemmas, so every run's witness must
    // falsify at least one literal of every run's nogoods
    let vertex_labels = plain.vertex_labels();
    for learner in &runs {
        for ng in &learner.nogoods {
            for run in &runs {
                if let Some(map) = &run.witness {
                    let contained = ng
                        .iter()
                        .all(|&(vi, val)| map.get(&vertex_labels[vi as usize]) == Some(&val));
                    prop_assert!(
                        !contained,
                        "witness from `{}` violates a nogood learned by `{}` at {}: {:?}",
                        run.name,
                        learner.name,
                        point,
                        ng
                    );
                }
            }
        }
    }
    Ok(())
}

/// Attaches certified task symmetries to a copy of `plain`. For
/// [`AgreementConstraint::MaxRange`] no symmetries are attached: value
/// relabelings do not preserve a range constraint, so orbit branching
/// has nothing sound to exploit there.
fn with_symmetries<V: ps_agreement::SymmetricView>(
    plain: &PreparedInstance<V>,
    pool: &VertexPool<V>,
    id_complex: &IdComplex,
    n_plus_1: usize,
    values: &BTreeSet<u64>,
    constraint: AgreementConstraint,
) -> PreparedInstance<V> {
    let mut sym = plain.clone();
    if !matches!(constraint, AgreementConstraint::MaxRange(_)) {
        let proc_gens = ps_models::process_transpositions(n_plus_1);
        sym.attach_symmetries(task_symmetries(
            pool, id_complex, n_plus_1, &proc_gens, values,
        ));
    }
    sym
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The four production configurations and the recursive oracle
    /// agree on randomized task instances across all three models.
    #[test]
    fn four_way_and_oracle_agree(
        model in 0usize..3,
        n_plus_1 in 2usize..=4,
        f_raw in 1usize..=2,
        rounds in 1usize..=2,
        k in 1usize..=2,
        constraint_idx in 0usize..3,
    ) {
        let f = f_raw.min(n_plus_1 - 1);
        // n = 4 multi-round task complexes overshoot MAX_VERTICES in
        // every model, and for semisync even *constructing* one takes
        // minutes — skip before building anything
        if n_plus_1 >= 4 && rounds >= 2 {
            return Ok(());
        }
        let task = KSetAgreement::canonical(k);
        let constraint = match constraint_idx {
            0 => AgreementConstraint::AtMostKDistinct(k),
            1 => AgreementConstraint::AllDistinct,
            _ => AgreementConstraint::MaxRange(k as u64 - 1),
        };
        let point = format!(
            "(model={}, n+1={n_plus_1}, f={f}, r={rounds}, k={k}, {constraint:?})",
            ["async", "sync", "semisync"][model],
        );
        match model {
            0 => {
                let (pool, ids) = async_task_parts(&task.values, n_plus_1, f, rounds);
                if ids.vertex_count() > MAX_VERTICES {
                    return Ok(());
                }
                let plain = PreparedInstance::from_interned(&pool, &ids, allowed_values);
                let sym = with_symmetries(&plain, &pool, &ids, n_plus_1, &task.values, constraint);
                check_instance(&point, &pool, &ids, &plain, &sym, constraint, allowed_values)?;
            }
            1 => {
                let k_per_round = k.min(f).max(1);
                let (pool, ids) =
                    sync_task_parts(&task.values, n_plus_1, k_per_round, f, rounds);
                if ids.vertex_count() > MAX_VERTICES {
                    return Ok(());
                }
                let plain = PreparedInstance::from_interned(&pool, &ids, allowed_values);
                let sym = with_symmetries(&plain, &pool, &ids, n_plus_1, &task.values, constraint);
                check_instance(&point, &pool, &ids, &plain, &sym, constraint, allowed_values)?;
            }
            _ => {
                let k_per_round = k.min(f).max(1);
                let (pool, ids) =
                    semisync_task_parts(&task.values, n_plus_1, k_per_round, f, 2, rounds);
                if ids.vertex_count() > MAX_VERTICES {
                    return Ok(());
                }
                let plain = PreparedInstance::from_interned(&pool, &ids, allowed_values_ss);
                let sym = with_symmetries(&plain, &pool, &ids, n_plus_1, &task.values, constraint);
                check_instance(&point, &pool, &ids, &plain, &sym, constraint, allowed_values_ss)?;
            }
        }
    }
}
