//! Stack-depth regression for the decision-map solver.
//!
//! The search must not consume call stack proportional to the size of
//! the protocol complex: an earlier recursive implementation used one
//! call frame per branched vertex and overflowed default thread stacks
//! on every n ≥ 4, k = 2, r = 2 sweep grid (EXPERIMENTS.md E15 recorded
//! those points as infeasible). The iterative frame-stack search bounds
//! depth by heap, so a deliberately deep instance must complete even on
//! a tiny 256 KiB stack — CI additionally runs the whole agreement
//! suite under `RUST_MIN_STACK=262144` (the `solver-depth` job) to
//! catch any reintroduced recursion.

use std::collections::BTreeSet;

use ps_agreement::{DecisionMapSolver, SolverStats};
use ps_topology::{Complex, Simplex};

/// Vertices of the path instance. Deep enough that one call frame per
/// vertex blows a 256 KiB (and comfortably a 2 MiB) stack.
const N: u32 = 10_000;

/// A path 0–1–2–⋯–(N-1): N-1 edge facets.
fn long_path() -> Complex<u32> {
    Complex::from_facets((0..N - 1).map(|i| Simplex::from_iter([i, i + 1])))
}

fn domain(_: &u32) -> BTreeSet<u64> {
    [0u64, 1].into_iter().collect()
}

/// 2-set agreement on the path with two-value domains: with only two
/// values, no edge ever saturates the k = 2 budget, so forward checking
/// never forces an assignment and the search branches at every single
/// vertex — search depth == vertex count. This is exactly the shape
/// that overflowed the recursive solver.
#[test]
fn deep_path_solves_on_a_tiny_stack() {
    let stats: SolverStats = std::thread::Builder::new()
        .stack_size(256 * 1024)
        .spawn(|| {
            let c = long_path();
            let mut solver = DecisionMapSolver::new();
            let map = solver.solve(&c, domain, 2).expect("trivially solvable");
            assert_eq!(map.len(), N as usize);
            assert!(DecisionMapSolver::verify(&c, &map, domain, 2));
            solver.stats()
        })
        .expect("spawn small-stack thread")
        .join()
        .expect("solver must not overflow a 256 KiB stack");
    // nothing was forced: the solver really did branch N levels deep
    assert!(
        stats.assignments >= N as usize,
        "expected one branch per vertex, got {stats:?}"
    );
}
