//! Durability and equivalence tests for the persistent verdict store:
//! cold vs warm sweeps are byte-identical with zero solver calls on
//! replay, a truncated (killed-mid-write) segment degrades gracefully
//! and loses at most the torn record, and a sweep interrupted after a
//! checkpoint resumes without redoing flushed work. All grids include
//! a structurally-addressed (canonicalization-gated) group so the
//! fallback path is exercised alongside exact canonical keys.

use std::fs;
use std::path::PathBuf;

use ps_agreement::{
    solvability_sweep_shared_store, SolvabilityResult, SweepOptions, SweepPoint, VerdictStore,
};

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small mixed grid: async/sync n=3 points (exact canonical keys)
/// plus a sync r=2 point whose canonicalization attempt is budget-cut,
/// forcing the structural-only store path.
fn mixed_grid() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for k in 1..=2 {
        points.push(SweepPoint::Async {
            k,
            f: 1,
            n_plus_1: 3,
            rounds: 1,
        });
        points.push(SweepPoint::Sync {
            k,
            f: 1,
            n_plus_1: 3,
            k_per_round: 1,
            rounds: 1,
        });
    }
    points.push(SweepPoint::Sync {
        k: 1,
        f: 1,
        n_plus_1: 3,
        k_per_round: 1,
        rounds: 2,
    });
    points
}

fn run_store(
    points: &[SweepPoint],
    threads: usize,
    dir: &PathBuf,
) -> (Vec<SolvabilityResult>, ps_agreement::StoreSweepReport) {
    let mut store = VerdictStore::open(dir).expect("store opens");
    solvability_sweep_shared_store(points, threads, SweepOptions::default(), &mut store)
        .expect("sweep runs")
}

#[test]
fn warm_rerun_is_identical_with_zero_solver_calls() {
    let points = mixed_grid();
    for threads in [1usize, 4] {
        let dir = temp_store(&format!("psph-store-warm-{threads}"));
        let (cold, cold_report) = run_store(&points, threads, &dir);
        assert!(cold_report.solver_calls > 0, "cold run must solve");
        assert!(
            cold_report.inexact_keys > 0,
            "grid must exercise the structural fallback"
        );
        let (warm, warm_report) = run_store(&points, threads, &dir);
        assert_eq!(cold, warm, "warm verdict table differs from cold");
        assert_eq!(warm_report.solver_calls, 0, "warm run must be pure replay");
        assert_eq!(
            warm_report.store_hits,
            cold_report.store_hits + cold_report.solver_calls,
            "every (class, k) pair replays warm"
        );
        assert_eq!(warm_report.persisted, 0, "replays are not re-persisted");
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn cold_with_store_matches_storeless_sweep() {
    let points = mixed_grid();
    let dir = temp_store("psph-store-equiv");
    let (with_store, _) = run_store(&points, 2, &dir);
    let plain = ps_agreement::solvability_sweep_shared_opts(&points, 2, SweepOptions::default());
    assert_eq!(with_store, plain, "store must not change verdicts");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_segment_loses_at_most_the_torn_record() {
    let points = mixed_grid();
    let dir = temp_store("psph-store-truncate");
    let (cold, _) = run_store(&points, 1, &dir);
    let full_len = VerdictStore::open(&dir).expect("reopen").len();

    // Simulate a crash mid-write: chop the tail off the last segment.
    let mut segments: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("store dir listable")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "psv"))
        .collect();
    segments.sort();
    let last = segments.last().expect("at least one segment");
    let bytes = fs::read(last).expect("segment readable");
    fs::write(last, &bytes[..bytes.len() - 7]).expect("truncate");

    let survivors = VerdictStore::open(&dir)
        .expect("truncated store loads")
        .len();
    assert!(survivors < full_len, "truncation must drop the torn record");
    assert!(
        survivors + 2 >= full_len,
        "truncation must lose only the torn tail ({survivors} of {full_len} survive)"
    );

    // The next sweep re-solves only what was lost and repairs the store.
    let (healed, report) = run_store(&points, 1, &dir);
    assert_eq!(cold, healed, "verdicts survive a torn segment");
    assert!(
        report.solver_calls <= 2,
        "only the torn verdicts are re-solved, got {}",
        report.solver_calls
    );
    let (warm, warm_report) = run_store(&points, 1, &dir);
    assert_eq!(cold, warm);
    assert_eq!(warm_report.solver_calls, 0, "store is fully repaired");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_sweep_resumes_without_redoing_flushed_work() {
    let points = mixed_grid();
    let dir = temp_store("psph-store-resume");

    // "Killed mid-sweep": only some classes ever got solved and
    // flushed. A class is addressed by its full (model, n, f, r)
    // group — so the surviving work is the async group in its
    // entirety (both k values share one instance and one key).
    let async_only: Vec<SweepPoint> = points
        .iter()
        .filter(|p| matches!(p, SweepPoint::Async { .. }))
        .cloned()
        .collect();
    let (_, partial_report) = run_store(&async_only, 1, &dir);
    assert!(partial_report.solver_calls > 0);

    // The resumed full sweep replays the prefix and solves the rest.
    let (resumed, report) = run_store(&points, 1, &dir);
    assert!(report.store_hits > 0, "flushed prefix work must replay");
    assert!(
        report.solver_calls < report.store_hits + report.solver_calls,
        "resume must reuse at least one stored verdict"
    );

    // Same verdicts as a cold run of the whole grid.
    let cold_dir = temp_store("psph-store-resume-cold");
    let (cold, _) = run_store(&points, 1, &cold_dir);
    assert_eq!(cold, resumed, "resumed sweep must match a cold sweep");
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&cold_dir);
}
