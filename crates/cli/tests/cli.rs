//! End-to-end tests for the `psph` binary.

use std::process::Command;

fn psph(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_psph"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn figure_1_summary() {
    let (stdout, _, ok) = psph(&["figure", "1"]);
    assert!(ok);
    assert!(stdout.contains("f-vector = [6, 12, 8]"));
    assert!(stdout.contains("connectivity = 1"));
}

#[test]
fn figure_3_union_shape() {
    let (stdout, _, ok) = psph(&["figure", "3"]);
    assert!(ok);
    assert!(stdout.contains("f-vector = [9, 12, 1]"));
}

#[test]
fn figure_out_writes_files() {
    let dir = std::env::temp_dir().join("psph-cli-test");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();
    let (stdout, _, ok) = psph(&["figure", "2a", "--out", dir_s]);
    assert!(ok, "{stdout}");
    for ext in ["dot", "off", "txt", "complex", "svg"] {
        assert!(
            dir.join(format!("figure2a.{ext}")).exists(),
            "missing {ext}"
        );
    }
    // the .complex file round-trips through the text parser
    let text = std::fs::read_to_string(dir.join("figure2a.complex")).unwrap();
    let parsed = ps_topology::export::from_text(&text).unwrap();
    assert_eq!(parsed.f_vector(), vec![4, 4]);
}

#[test]
fn complex_formats() {
    let (summary, _, ok) = psph(&["complex", "sync", "--procs", "3", "--rounds", "1"]);
    assert!(ok);
    assert!(summary.contains("facets (10)"));
    let (dot, _, ok) = psph(&["complex", "async", "--format", "dot"]);
    assert!(ok);
    assert!(dot.starts_with("graph"));
    let (text, _, ok) = psph(&["complex", "iis", "--format", "text"]);
    assert!(ok);
    assert!(text.starts_with("complex v1"));
}

#[test]
fn solve_staircase() {
    let (r1, _, ok) = psph(&["solve", "sync", "--rounds", "1"]);
    assert!(ok);
    assert!(r1.contains("NO decision map"));
    let (r2, _, ok) = psph(&["solve", "sync", "--rounds", "2"]);
    assert!(ok);
    assert!(r2.contains("decision map EXISTS"));
}

#[test]
fn prove_emits_derivation() {
    let (stdout, _, ok) = psph(&["prove", "sync"]);
    assert!(ok);
    assert!(stdout.contains("Mayer–Vietoris"));
    assert!(stdout.contains("proof nodes"));
}

#[test]
fn stretch_respects_bound() {
    let (stdout, _, ok) = psph(&["stretch", "--c2", "4"]);
    assert!(ok);
    assert!(stdout.contains("respected ✓"));
}

#[test]
fn simulate_reports_clean_sweep() {
    let (stdout, _, ok) = psph(&["simulate", "--procs", "3", "--f", "1", "--seeds", "25"]);
    assert!(ok);
    assert!(stdout.contains("25/25"));
}

#[test]
fn chain_prints_links() {
    let (stdout, _, ok) = psph(&["chain"]);
    assert!(ok);
    assert!(stdout.contains("indistinguishability chain"));
    assert!(stdout.contains("chain argument"));
}

#[test]
fn sweep_prints_full_grid() {
    // amortized (default) path: one shared complex per (n, f, r) group
    let (stdout, _, ok) = psph(&[
        "sweep",
        "sync",
        "--procs",
        "3",
        "--f",
        "1",
        "--k",
        "2",
        "--rounds",
        "2",
        "--threads",
        "2",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("amortized"), "{stdout}");
    // one row per (k, r) grid point, with classical verdicts: sync
    // consensus with f = 1 needs 2 rounds; 2-set agreement needs 1
    let rows: Vec<&str> = stdout
        .lines()
        .filter(|l| l.contains("solvable") || l.contains("NO decision map"))
        .collect();
    assert_eq!(rows.len(), 4, "{stdout}");
    assert!(rows[0].contains("NO decision map"), "{stdout}"); // k=1 r=1
    assert!(rows[1].contains("solvable"), "{stdout}"); // k=1 r=2
    assert!(rows[2].contains("solvable"), "{stdout}"); // k=2 r=1
}

#[test]
fn sweep_independent_flag_matches_shared_verdicts() {
    let grid = [
        "sweep", "async", "--procs", "3", "--f", "1", "--k", "2", "--rounds", "1",
    ];
    let (shared, _, ok) = psph(&grid);
    assert!(ok);
    let mut with_flag = grid.to_vec();
    with_flag.push("--independent");
    let (independent, _, ok2) = psph(&with_flag);
    assert!(ok2);
    assert!(!independent.contains("amortized"), "{independent}");
    let verdicts = |out: &str| -> Vec<bool> {
        out.lines()
            .filter(|l| l.contains("solvable") || l.contains("NO decision map"))
            .map(|l| !l.contains("NO decision map"))
            .collect()
    };
    assert_eq!(verdicts(&shared), verdicts(&independent));
    // Corollary 13 at a glance: k=1 ≤ f unsolvable, k=2 > f solvable
    assert_eq!(verdicts(&shared), vec![false, true]);
}

#[test]
fn sweep_symmetry_off_matches_default_verdicts() {
    let grid = [
        "sweep", "sync", "--procs", "3", "--f", "2", "--k", "2", "--rounds", "2",
    ];
    let (on, _, ok) = psph(&grid);
    assert!(ok, "{on}");
    assert!(on.contains("symmetry on"), "{on}");
    let mut off_args = grid.to_vec();
    off_args.extend(["--symmetry", "off"]);
    let (off, _, ok2) = psph(&off_args);
    assert!(ok2, "{off}");
    assert!(off.contains("symmetry off"), "{off}");
    let rows = |out: &str| -> Vec<String> {
        out.lines()
            .filter(|l| l.contains("solvable") || l.contains("NO decision map"))
            .map(str::to_string)
            .collect()
    };
    // full rows (counts included) must agree, not just verdicts
    assert_eq!(rows(&on), rows(&off));
}

#[test]
fn sweep_learning_off_matches_default_verdicts() {
    let grid = [
        "sweep", "sync", "--procs", "3", "--f", "2", "--k", "2", "--rounds", "2",
    ];
    let (on, _, ok) = psph(&grid);
    assert!(ok, "{on}");
    assert!(on.contains("learning on"), "{on}");
    let mut off_args = grid.to_vec();
    off_args.extend(["--learning", "off"]);
    let (off, _, ok2) = psph(&off_args);
    assert!(ok2, "{off}");
    assert!(off.contains("learning off"), "{off}");
    let rows = |out: &str| -> Vec<String> {
        out.lines()
            .filter(|l| l.contains("solvable") || l.contains("NO decision map"))
            .map(str::to_string)
            .collect()
    };
    // full rows (counts included) must agree, not just verdicts
    assert_eq!(rows(&on), rows(&off));
}

#[test]
fn solve_learning_flag_parses_and_agrees() {
    let base = ["solve", "async", "--procs", "3", "--f", "2", "--k", "2"];
    let (on, _, ok) = psph(&base);
    assert!(ok, "{on}");
    let mut off_args = base.to_vec();
    off_args.extend(["--learning", "off"]);
    let (off, _, ok2) = psph(&off_args);
    assert!(ok2, "{off}");
    assert_eq!(on, off);
    let mut bad = base.to_vec();
    bad.extend(["--learning", "sideways"]);
    let (_, stderr, ok3) = psph(&bad);
    assert!(!ok3);
    assert!(stderr.contains("--learning expects"), "{stderr}");
}

#[test]
fn solve_symmetry_flag_parses_and_agrees() {
    let base = ["solve", "async", "--procs", "3", "--f", "1", "--k", "1"];
    let (on, _, ok) = psph(&base);
    assert!(ok, "{on}");
    let mut off_args = base.to_vec();
    off_args.extend(["--symmetry", "off"]);
    let (off, _, ok2) = psph(&off_args);
    assert!(ok2, "{off}");
    assert_eq!(on, off);
    let mut bad = base.to_vec();
    bad.extend(["--symmetry", "sideways"]);
    let (_, stderr, ok3) = psph(&bad);
    assert!(!ok3);
    assert!(stderr.contains("--symmetry expects"), "{stderr}");
}

#[test]
fn errors_are_reported() {
    let (_, stderr, ok) = psph(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"));
    assert!(stderr.contains("usage:"));
    let (_, stderr2, ok2) = psph(&[]);
    assert!(!ok2);
    assert!(stderr2.contains("missing subcommand"));
    let (_, stderr3, ok3) = psph(&["complex", "warp"]);
    assert!(!ok3);
    assert!(stderr3.contains("unknown model"));
}

#[test]
fn deep_view_text_export_is_lossless() {
    // 2-round views render compactly and can collide; the exporter must
    // disambiguate so the parsed complex has the same shape.
    let (text, _, ok) = psph(&[
        "complex", "async", "--procs", "2", "--rounds", "2", "--format", "text",
    ]);
    assert!(ok);
    let parsed = ps_topology::export::from_text(&text).unwrap();
    // ground truth vertex/facet counts from the library
    use pseudosphere_check::*;
    let (vertices, facets) = async_r2_counts();
    assert_eq!(parsed.vertex_count(), vertices);
    assert_eq!(parsed.facet_count(), facets);
}

/// tiny helper module so the test does not need the full facade crate
mod pseudosphere_check {
    pub fn async_r2_counts() -> (usize, usize) {
        let model = ps_models::AsyncModel::new(2, 1);
        let input = ps_models::input_simplex(&[0u8, 1]);
        let c = model.protocol_complex(&input, 2);
        (c.vertex_count(), c.facet_count())
    }
}

#[test]
fn sweep_store_warm_rerun_replays_everything() {
    let dir = std::env::temp_dir().join("psph-cli-sweep-store");
    let _ = std::fs::remove_dir_all(&dir);
    let store = dir.to_str().unwrap();
    let grid = [
        "sweep", "sync", "--procs", "3", "--f", "1", "--k", "2", "--rounds", "1",
    ];
    let mut cold_args: Vec<&str> = grid.to_vec();
    cold_args.extend(["--store", store]);
    let (cold, _, ok) = psph(&cold_args);
    assert!(ok, "{cold}");
    assert!(cold.contains("store hits: 0"), "{cold}");
    assert!(!cold.contains("solver calls: 0"), "{cold}");

    let mut warm_args: Vec<&str> = grid.to_vec();
    warm_args.extend(["--store", store, "--resume"]);
    let (warm, _, ok) = psph(&warm_args);
    assert!(ok, "{warm}");
    assert!(warm.contains("resuming:"), "{warm}");
    assert!(warm.contains("solver calls: 0"), "{warm}");
    // identical verdict table, line for line
    let table = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.ends_with("solvable") || l.ends_with("NO decision map"))
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(table(&cold), table(&warm));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_resume_without_store_is_an_error() {
    let (_, stderr, ok) = psph(&["sweep", "sync", "--resume"]);
    assert!(!ok);
    assert!(stderr.contains("--resume requires --store"), "{stderr}");
}

#[test]
fn sweep_resume_with_missing_store_is_an_error() {
    let dir = std::env::temp_dir().join("psph-cli-no-such-store");
    let _ = std::fs::remove_dir_all(&dir);
    let (_, stderr, ok) = psph(&[
        "sweep",
        "sync",
        "--store",
        dir.to_str().unwrap(),
        "--resume",
    ]);
    assert!(!ok);
    assert!(stderr.contains("does not exist"), "{stderr}");
}

#[test]
fn serve_answers_batches_and_reports_metrics() {
    let dir = std::env::temp_dir().join("psph-cli-serve");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("queries.txt");
    std::fs::write(
        &input,
        "# consensus is async-impossible (Corollary 10)\n\
         async 1 1 3 1\n\
         sync 1 1 3 1 1\n\
         \n\
         async 1 1 3 1  # duplicate: session hit\n\
         not a query\n",
    )
    .unwrap();
    let store = dir.join("store");
    let (out, _, ok) = psph(&[
        "serve",
        "--input",
        input.to_str().unwrap(),
        "--store",
        store.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    assert!(
        out.contains("async k=1 f=1 n=3 r=1: NO decision map"),
        "{out}"
    );
    assert!(out.contains("source=solved"), "{out}");
    assert!(out.contains("source=session"), "{out}");
    assert!(out.contains("parse error"), "{out}");
    assert!(out.contains("serve session: 3 queries"), "{out}");

    // a second server over the same store replays from disk
    let (warm, _, ok) = psph(&[
        "serve",
        "--input",
        input.to_str().unwrap(),
        "--store",
        store.to_str().unwrap(),
    ]);
    assert!(ok, "{warm}");
    assert!(warm.contains("source=store"), "{warm}");
    assert!(warm.contains("solver calls: 0"), "{warm}");
    let _ = std::fs::remove_dir_all(&dir);
}
