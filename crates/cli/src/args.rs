//! Minimal argument parsing for the `psph` binary: positional
//! subcommand plus `--key value` / `--flag` options. No external
//! dependencies.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: subcommand, positionals, and options.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional), if any.
    pub command: Option<String>,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    /// `--key value` options and bare `--flag`s (mapped to `"true"`).
    pub options: BTreeMap<String, String>,
}

/// Argument error with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgError("empty option name `--`".into()));
                }
                // `--key=value` or `--key value` or bare flag
                if let Some((k, v)) = key.split_once('=') {
                    args.options.insert(k.to_string(), v.to_string());
                } else if iter.peek().is_some_and(|n| !n.starts_with("--")) {
                    args.options.insert(key.to_string(), iter.next().unwrap());
                } else {
                    args.options.insert(key.to_string(), "true".to_string());
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// A `usize` option with a default.
    pub fn usize_opt(&self, key: &str, default: usize) -> Result<usize, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects an integer, got `{v}`"))),
        }
    }

    /// A `u64` option with a default.
    pub fn u64_opt(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects an integer, got `{v}`"))),
        }
    }

    /// An `i32` option with a default.
    pub fn i32_opt(&self, key: &str, default: i32) -> Result<i32, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects an integer, got `{v}`"))),
        }
    }

    /// A string option with a default.
    pub fn str_opt(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).map(String::as_str) == Some("true")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(toks: &[&str]) -> Args {
        Args::parse(toks.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn subcommand_and_positionals() {
        let a = parse(&["solve", "extra1", "extra2"]);
        assert_eq!(a.command.as_deref(), Some("solve"));
        assert_eq!(a.positional, vec!["extra1", "extra2"]);
    }

    #[test]
    fn options_forms() {
        let a = parse(&["complex", "--procs", "4", "--rounds=2", "--verbose"]);
        assert_eq!(a.usize_opt("procs", 0).unwrap(), 4);
        assert_eq!(a.usize_opt("rounds", 0).unwrap(), 2);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.usize_opt("missing", 7).unwrap(), 7);
    }

    #[test]
    fn numeric_errors() {
        let a = parse(&["x", "--procs", "--three"]);
        // `--procs` captured as a bare flag because next token is an option
        assert!(a.flag("procs"));
        let b = parse(&["x", "--n=abc"]);
        assert!(b.usize_opt("n", 0).is_err());
        assert!(b.u64_opt("n", 0).is_err());
        assert!(b.i32_opt("n", 0).is_err());
    }

    #[test]
    fn string_defaults() {
        let a = parse(&["x", "--format", "dot"]);
        assert_eq!(a.str_opt("format", "summary"), "dot");
        assert_eq!(a.str_opt("other", "summary"), "summary");
    }

    #[test]
    fn empty_option_rejected() {
        assert!(Args::parse(["--".to_string()]).is_err());
    }
}
