//! `psph` — command-line interface to the pseudosphere reproduction.
//!
//! ```text
//! psph figure <1|2a|2b|3> [--out DIR]
//! psph complex <async|sync|semisync|iis> [--procs N] [--f F] [--k K]
//!              [--p P] [--rounds R] [--format summary|dot|off|text]
//! psph prove <sync|semisync> [--procs N] [--k K] [--p P] [--level L]
//! psph solve <async|sync|semisync> [--procs N] [--f F] [--k K]
//!              [--p P] [--rounds R]
//! psph sweep <async|sync|semisync> [--procs N] [--f F] [--k K]
//!              [--p P] [--rounds R] [--independent]
//! psph simulate [--procs N] [--f F] [--k K] [--seeds S]
//!
//! All subcommands accept a global `--threads T` (worker threads for
//! homology and sweeps; `PS_THREADS` overrides the default).
//! psph stretch [--procs N] [--k K] [--c1 T] [--c2 T] [--d T]
//! psph traffic [--n N] [--messages M] [--policy sync|semisync|async|all]
//!              [--seed S] [--crashes C] [--c1 T] [--c2 T] [--d T]
//!              [--horizon H]
//! psph chain [--procs N]
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    // Exit quietly when stdout is closed early (e.g. `psph ... | head`):
    // Rust's println! panics on EPIPE; treat that as a normal exit.
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        eprintln!("{info}");
        std::process::exit(101);
    }));

    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let code = match commands::run(&parsed) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            1
        }
    };
    std::process::exit(code);
}
