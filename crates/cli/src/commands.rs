//! Subcommand implementations for `psph`.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use ps_agreement::{
    async_solvable_opts, semisync_solvable_opts, solvability_sweep_opts,
    solvability_sweep_shared_opts, solvability_sweep_shared_store, stretch_experiment,
    sync_solvable_opts, FloodSet, QueryEngine, SweepOptions, SweepPoint, VerdictStore,
};
use ps_core::{process_simplex, MvProver, ProcessId, Pseudosphere};
use ps_models::{input_simplex, AsyncModel, IisModel, SemiSyncModel, SyncModel};
use ps_runtime::{
    traffic_run, AsyncPolicy, RandomAdversary, RandomTimedAdversary, SemisyncPolicy, SyncExecutor,
    SyncPolicy, TimedParams, TrafficReport,
};
use ps_topology::export::{ascii_summary, to_dot, to_off, to_text};
use ps_topology::{indistinguishability_chain, Complex, ConnectivityAnalyzer, Label};

use crate::args::{ArgError, Args};

/// Usage text shown on errors.
pub const USAGE: &str = "\
usage:
  psph figure <1|2a|2b|3> [--out DIR]
  psph complex <async|sync|semisync|iis> [--procs N] [--f F] [--k K]
               [--p P] [--rounds R] [--format summary|dot|off|text]
  psph prove <sync|semisync> [--procs N] [--k K] [--p P] [--level L]
  psph solve <async|sync|semisync> [--procs N] [--f F] [--k K]
               [--p P] [--rounds R] [--symmetry on|off] [--learning on|off]
  psph sweep <async|sync|semisync> [--procs N] [--f F] [--k K]
               [--p P] [--rounds R] [--independent] [--symmetry on|off]
               [--learning on|off] [--store DIR] [--resume]
  psph serve [--store DIR] [--input FILE] [--symmetry on|off]
               [--learning on|off]
  psph homology <async|sync|semisync> [--procs N] [--f F] [--k K]
               [--p P] [--rounds R] [--oracle]
  psph homology corpus [--trials T] [--seed S]
  psph simulate [--procs N] [--f F] [--k K] [--seeds S]
  psph stretch [--procs N] [--k K] [--c1 T] [--c2 T] [--d T]
  psph traffic [--n N] [--messages M] [--policy sync|semisync|async|all]
               [--seed S] [--crashes C] [--c1 T] [--c2 T] [--d T]
               [--horizon H]
  psph chain [--procs N]

defaults: --procs 3 --f 1 --k 1 --p 2 --rounds 1
global: --threads T  worker threads for homology and sweeps
        (default: all cores; PS_THREADS overrides)
        --symmetry on|off  exploit task symmetries: orbit branching in
        the solver and canonical-form dedupe across sweep groups
        (default: on; verdicts are identical either way)
        --learning on|off  conflict-driven backjumping with nogood
        learning in the decision-map solver
        (default: on; verdicts are identical either way)
store:  --store DIR  persistent verdict store: sweeps warm-start from
        stored verdicts and checkpoint new ones; serve probes it
        before solving.  --resume requires --store and an existing
        store directory (continue an interrupted sweep).
serve:  reads queries from stdin (or --input FILE), one per line:
          async K F N R | sync K F N R KPR | semisync K F N R KPR P
        blank line = end of batch; `#` starts a comment; malformed
        lines are reported and skipped.  Prints one verdict line per
        query and a metrics summary at end of input.
homology: model mode runs the sparse GF(2) engine on one protocol
        complex (Betti numbers, connectivity, work counters, timings);
        corpus mode diffs the sparse engine against the dense oracle
        on a fixed + randomized corpus and exits nonzero on any
        mismatch (the CI homology-equivalence gate).";

/// Parses `--symmetry on|off` (default `on`).
fn symmetry_opt(args: &Args) -> Result<bool, ArgError> {
    match args.str_opt("symmetry", "on").as_str() {
        "on" | "true" => Ok(true),
        "off" | "false" => Ok(false),
        other => Err(ArgError(format!(
            "--symmetry expects `on` or `off`, got `{other}`"
        ))),
    }
}

/// Parses `--learning on|off` (default `on`).
fn learning_opt(args: &Args) -> Result<bool, ArgError> {
    match args.str_opt("learning", "on").as_str() {
        "on" | "true" => Ok(true),
        "off" | "false" => Ok(false),
        other => Err(ArgError(format!(
            "--learning expects `on` or `off`, got `{other}`"
        ))),
    }
}

/// Builds [`SweepOptions`] from the shared `--symmetry`/`--learning`
/// flags.
fn sweep_options(args: &Args) -> Result<SweepOptions, ArgError> {
    Ok(SweepOptions {
        symmetry: symmetry_opt(args)?,
        learning: learning_opt(args)?,
    })
}

/// Dispatches a parsed command line.
pub fn run(args: &Args) -> Result<(), ArgError> {
    if let Some(t) = args.options.get("threads") {
        let t: usize = t
            .parse()
            .map_err(|_| ArgError(format!("--threads expects an integer, got `{t}`")))?;
        if t == 0 {
            return Err(ArgError("--threads must be at least 1".into()));
        }
        ps_topology::parallel::set_threads(Some(t));
    }
    match args.command.as_deref() {
        Some("figure") => figure(args),
        Some("complex") => complex(args),
        Some("prove") => prove(args),
        Some("solve") => solve(args),
        Some("sweep") => sweep(args),
        Some("homology") => homology(args),
        Some("serve") => serve(args),
        Some("simulate") => simulate(args),
        Some("stretch") => stretch(args),
        Some("traffic") => traffic(args),
        Some("chain") => chain(args),
        Some(other) => Err(ArgError(format!("unknown subcommand `{other}`"))),
        None => Err(ArgError("missing subcommand".into())),
    }
}

fn first_positional(args: &Args, what: &str) -> Result<String, ArgError> {
    args.positional
        .first()
        .cloned()
        .ok_or_else(|| ArgError(format!("missing {what}")))
}

/// Maps vertices to their Debug form, disambiguating collisions (deep
/// views render compactly and may collide) by appending `#index`.
fn injective_labels<V: Label>(c: &Complex<V>) -> Complex<String> {
    use std::collections::BTreeMap;
    // position map, not binary search: no assumption that
    // `vertex_set()` iteration order agrees with `Ord`
    let mut position: BTreeMap<&V, usize> = BTreeMap::new();
    let verts: Vec<V> = c.vertex_set().into_iter().collect();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for (i, v) in verts.iter().enumerate() {
        position.insert(v, i);
        *counts.entry(format!("{v:?}")).or_default() += 1;
    }
    c.map(|v| {
        let base = format!("{v:?}");
        if counts[&base] > 1 {
            format!("{base}#{}", position[v])
        } else {
            base
        }
    })
}

fn render<V: Label>(c: &Complex<V>, title: &str, format: &str) -> Result<String, ArgError> {
    Ok(match format {
        "summary" => {
            let mut out = ascii_summary(c, title);
            let an = ConnectivityAnalyzer::new(c);
            let conn = match an.connectivity() {
                i32::MAX => "∞ (contractible)".to_string(),
                k => k.to_string(),
            };
            let _ = writeln!(out, "connectivity = {conn}");
            out
        }
        "dot" => to_dot(c, title),
        "off" => to_off(c),
        "text" => to_text(&injective_labels(c)),
        other => return Err(ArgError(format!("unknown format `{other}`"))),
    })
}

fn figure(args: &Args) -> Result<(), ArgError> {
    let which = first_positional(args, "figure id (1, 2a, 2b, 3)")?;
    let binary: BTreeSet<u8> = [0, 1].into_iter().collect();
    let (title, c): (String, Complex<(ProcessId, u8)>) = match which.as_str() {
        "1" => (
            "Figure 1: ψ(S²; {0,1})".into(),
            Pseudosphere::uniform(process_simplex(3), binary).realize(),
        ),
        "2a" => (
            "Figure 2a: ψ(S¹; {0,1})".into(),
            Pseudosphere::uniform(process_simplex(2), binary).realize(),
        ),
        "2b" => (
            "Figure 2b: ψ(S¹; {0,1,2})".into(),
            Pseudosphere::uniform(process_simplex(2), (0..3).collect()).realize(),
        ),
        "3" => {
            let model = SyncModel::new(3, 1, 1);
            let input = input_simplex(&[0u8, 1, 2]);
            let c = model.one_round_union(&input).realize();
            println!(
                "{}",
                render(
                    &c,
                    "Figure 3: S¹(S²), ≤1 failure",
                    &args.str_opt("format", "summary")
                )?
            );
            return maybe_write_out(args, "figure3", &c);
        }
        other => return Err(ArgError(format!("unknown figure `{other}`"))),
    };
    println!(
        "{}",
        render(&c, &title, &args.str_opt("format", "summary"))?
    );
    maybe_write_out(args, &format!("figure{which}"), &c)
}

fn maybe_write_out<V: Label>(args: &Args, stem: &str, c: &Complex<V>) -> Result<(), ArgError> {
    if let Some(dir) = args.options.get("out") {
        std::fs::create_dir_all(dir).map_err(|e| ArgError(format!("cannot create {dir}: {e}")))?;
        for (ext, contents) in [
            ("dot", to_dot(c, stem)),
            ("off", to_off(c)),
            ("txt", ascii_summary(c, stem)),
            ("complex", to_text(&injective_labels(c))),
            (
                "svg",
                ps_topology::svg::to_svg(c, stem, &ps_topology::svg::SvgOptions::default()),
            ),
        ] {
            let path = format!("{dir}/{stem}.{ext}");
            std::fs::write(&path, contents)
                .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        }
        println!("wrote {dir}/{stem}.{{dot,off,txt,complex,svg}}");
    }
    Ok(())
}

fn complex(args: &Args) -> Result<(), ArgError> {
    let model = first_positional(args, "model (async|sync|semisync|iis)")?;
    let n = args.usize_opt("procs", 3)?;
    let f = args.usize_opt("f", 1)?;
    let k = args.usize_opt("k", 1)?;
    let p = args.usize_opt("p", 2)? as u32;
    let rounds = args.usize_opt("rounds", 1)?;
    let format = args.str_opt("format", "summary");
    let inputs: Vec<u8> = (0..n as u8).collect();
    let input = input_simplex(&inputs);
    let title = format!("{model} complex, {n} processes, {rounds} round(s)");
    let text = match model.as_str() {
        "async" => {
            let m = AsyncModel::new(n, f);
            render(&m.protocol_complex(&input, rounds), &title, &format)?
        }
        "sync" => {
            let m = SyncModel::new(n, k, f);
            render(&m.protocol_complex(&input, rounds), &title, &format)?
        }
        "semisync" => {
            let m = SemiSyncModel::new(n, k, f, p);
            render(&m.protocol_complex(&input, rounds), &title, &format)?
        }
        "iis" => {
            let m = IisModel::new();
            render(&m.protocol_complex(&input, rounds), &title, &format)?
        }
        other => return Err(ArgError(format!("unknown model `{other}`"))),
    };
    println!("{text}");
    Ok(())
}

fn prove(args: &Args) -> Result<(), ArgError> {
    let model = first_positional(args, "model (sync|semisync)")?;
    let n = args.usize_opt("procs", 3)?;
    let k = args.usize_opt("k", 1)?;
    let p = args.usize_opt("p", 2)? as u32;
    let inputs: Vec<u8> = (0..n as u8).collect();
    let input = input_simplex(&inputs);
    match model.as_str() {
        "sync" => {
            let m = SyncModel::new(n, k, k);
            let union = m.one_round_union(&input);
            let level = args.i32_opt("level", m.claimed_connectivity(n as i32 - 1))?;
            run_prover(&union, level);
        }
        "semisync" => {
            let m = SemiSyncModel::new(n, k, k, p);
            let union = m.one_round_union(&input);
            let level = args.i32_opt("level", m.claimed_connectivity(n as i32 - 1))?;
            run_prover(&union, level);
        }
        other => return Err(ArgError(format!("unknown model `{other}`"))),
    }
    Ok(())
}

fn run_prover<P: Label, U: Label>(union: &ps_core::PseudosphereUnion<P, U>, level: i32) {
    println!(
        "union: {} pseudosphere members; attempting {level}-connectivity\n",
        union.len()
    );
    let mut prover = MvProver::new();
    match prover.prove_k_connected(union, level) {
        Ok(proof) => {
            println!("{proof}");
            let s = prover.stats();
            println!(
                "({} proof nodes; {} leaf evaluations, {} MV applications, {} intersections)",
                proof.size(),
                s.leaf_evaluations,
                s.mv_applications,
                s.intersections
            );
        }
        Err(e) => println!("not provable by the flat MV induction: {e}"),
    }
}

fn solve(args: &Args) -> Result<(), ArgError> {
    let model = first_positional(args, "model (async|sync|semisync)")?;
    let n = args.usize_opt("procs", 3)?;
    let f = args.usize_opt("f", 1)?;
    let k = args.usize_opt("k", 1)?;
    let p = args.usize_opt("p", 2)? as u32;
    let rounds = args.usize_opt("rounds", 1)?;
    let opts = sweep_options(args)?;
    let res = match model.as_str() {
        "async" => async_solvable_opts(k, f, n, rounds, opts),
        "sync" => sync_solvable_opts(k, f, n, k.max(1).min(f.max(1)), rounds, opts),
        "semisync" => semisync_solvable_opts(k, f, n, k.max(1).min(f.max(1)), p, rounds, opts),
        other => return Err(ArgError(format!("unknown model `{other}`"))),
    };
    println!("{model} {k}-set agreement, {n} processes, f = {f}, r = {rounds}:");
    println!(
        "  protocol complex: {} vertices, {} facets",
        res.vertices, res.facets
    );
    if res.solvable {
        println!("  decision map EXISTS (witness found by exhaustive search)");
    } else {
        println!("  NO decision map exists (proved by exhaustive search)");
    }
    Ok(())
}

/// Batched solvability sweep over every `(k, r)` grid point up to the
/// given bounds. By default points differing only in `k` share one
/// interned protocol complex and facet index
/// ([`ps_agreement::solvability_sweep_shared_auto`]); `--independent`
/// restores the per-point canonical-domain path.
fn sweep(args: &Args) -> Result<(), ArgError> {
    let model = first_positional(args, "model (async|sync|semisync)")?;
    let n = args.usize_opt("procs", 3)?;
    let f = args.usize_opt("f", 1)?;
    let k_max = args.usize_opt("k", 1)?;
    let p = args.usize_opt("p", 2)? as u32;
    let r_max = args.usize_opt("rounds", 1)?;
    let mut points = Vec::new();
    for k in 1..=k_max.max(1) {
        for rounds in 1..=r_max.max(1) {
            let k_per_round = k.max(1).min(f.max(1));
            points.push(match model.as_str() {
                "async" => SweepPoint::Async {
                    k,
                    f,
                    n_plus_1: n,
                    rounds,
                },
                "sync" => SweepPoint::Sync {
                    k,
                    f,
                    n_plus_1: n,
                    k_per_round,
                    rounds,
                },
                "semisync" => SweepPoint::SemiSync {
                    k,
                    f,
                    n_plus_1: n,
                    k_per_round,
                    microrounds: p,
                    rounds,
                },
                other => return Err(ArgError(format!("unknown model `{other}`"))),
            });
        }
    }
    let threads = ps_topology::parallel::configured_threads();
    let independent = args.flag("independent");
    let opts = sweep_options(args)?;
    let store_dir = args.options.get("store").cloned();
    let resume = args.flag("resume");
    if resume && store_dir.is_none() {
        return Err(ArgError("--resume requires --store DIR".into()));
    }
    if store_dir.is_some() && independent {
        return Err(ArgError(
            "--store uses the shared-complex path; drop --independent".into(),
        ));
    }
    println!(
        "{model} sweep: {n} processes, f = {f}, k = 1..={}, r = 1..={} ({} points, {threads} threads, symmetry {}, learning {})",
        k_max.max(1),
        r_max.max(1),
        points.len(),
        if opts.symmetry { "on" } else { "off" },
        if opts.learning { "on" } else { "off" },
    );
    let mut store_report = None;
    let results = if let Some(dir) = &store_dir {
        if resume && !std::path::Path::new(dir).is_dir() {
            return Err(ArgError(format!(
                "--resume: store directory `{dir}` does not exist"
            )));
        }
        let mut store = VerdictStore::open(dir)
            .map_err(|e| ArgError(format!("cannot open store `{dir}`: {e}")))?;
        if resume {
            println!("  resuming: {} verdicts on disk in {dir}", store.len());
        }
        let (results, report) = solvability_sweep_shared_store(&points, threads, opts, &mut store)
            .map_err(|e| ArgError(format!("store-backed sweep failed: {e}")))?;
        store_report = Some((report, store.len()));
        results
    } else if independent {
        // legacy per-point path: each point rebuilds its own canonical
        // ({0..k}) protocol complex
        solvability_sweep_opts(&points, threads, opts)
    } else {
        // amortized path: points differing only in k share one interned
        // complex + facet index, solved on the group domain {0..k_max}
        println!(
            "  (amortized: points sharing (model, n, f, r) reuse one complex over the \
             value domain {{0..k_max}}; pass --independent for per-point canonical domains)"
        );
        solvability_sweep_shared_opts(&points, threads, opts)
    };
    println!(
        "  {:>3} {:>3} {:>10} {:>8}  outcome",
        "k", "r", "vertices", "facets"
    );
    for (pt, res) in points.iter().zip(&results) {
        let (k, rounds) = match *pt {
            SweepPoint::Async { k, rounds, .. }
            | SweepPoint::Sync { k, rounds, .. }
            | SweepPoint::SemiSync { k, rounds, .. } => (k, rounds),
        };
        println!(
            "  {:>3} {:>3} {:>10} {:>8}  {}",
            k,
            rounds,
            res.vertices,
            res.facets,
            if res.solvable {
                "solvable"
            } else {
                "NO decision map"
            }
        );
    }
    if let (Some((report, on_disk)), Some(dir)) = (store_report, &store_dir) {
        println!(
            "  store {dir}: {} groups, {} classes ({} structural-only)",
            report.groups, report.classes, report.inexact_keys
        );
        println!(
            "  store hits: {}   solver calls: {}   persisted: {}   on disk: {on_disk}",
            report.store_hits, report.solver_calls, report.persisted
        );
    }
    Ok(())
}

/// Parses one serve query line: `async K F N R`, `sync K F N R KPR`,
/// or `semisync K F N R KPR P`.
fn parse_query(line: &str) -> Result<SweepPoint, String> {
    let mut it = line.split_whitespace();
    let model = it.next().ok_or("empty query")?;
    let nums: Vec<usize> = it
        .map(|t| {
            t.parse::<usize>()
                .map_err(|_| format!("`{t}` is not a non-negative integer"))
        })
        .collect::<Result<_, _>>()?;
    match (model, nums.as_slice()) {
        ("async", &[k, f, n, r]) => Ok(SweepPoint::Async {
            k,
            f,
            n_plus_1: n,
            rounds: r,
        }),
        ("sync", &[k, f, n, r, kpr]) => Ok(SweepPoint::Sync {
            k,
            f,
            n_plus_1: n,
            k_per_round: kpr,
            rounds: r,
        }),
        ("semisync", &[k, f, n, r, kpr, p]) => Ok(SweepPoint::SemiSync {
            k,
            f,
            n_plus_1: n,
            k_per_round: kpr,
            microrounds: p as u32,
            rounds: r,
        }),
        ("async", _) => Err("async expects `async K F N R`".into()),
        ("sync", _) => Err("sync expects `sync K F N R KPR`".into()),
        ("semisync", _) => Err("semisync expects `semisync K F N R KPR P`".into()),
        (other, _) => Err(format!("unknown model `{other}`")),
    }
}

/// One human-readable tag per query, echoed back with its verdict.
fn describe_query(p: &SweepPoint) -> String {
    match *p {
        SweepPoint::Async {
            k,
            f,
            n_plus_1,
            rounds,
        } => format!("async k={k} f={f} n={n_plus_1} r={rounds}"),
        SweepPoint::Sync {
            k,
            f,
            n_plus_1,
            k_per_round,
            rounds,
        } => format!("sync k={k} f={f} n={n_plus_1} r={rounds} kpr={k_per_round}"),
        SweepPoint::SemiSync {
            k,
            f,
            n_plus_1,
            k_per_round,
            microrounds,
            rounds,
        } => format!(
            "semisync k={k} f={f} n={n_plus_1} r={rounds} kpr={k_per_round} p={microrounds}"
        ),
    }
}

/// Long-running query server over the verdict cache hierarchy: session
/// cache, persistent store (when `--store` is given), then the solver.
/// Queries arrive one per line (grammar in [`USAGE`]); a blank line
/// ends a batch, and each batch is answered — and its new verdicts
/// flushed to the store — before the next is read.
fn serve(args: &Args) -> Result<(), ArgError> {
    use std::io::BufRead as _;
    let opts = sweep_options(args)?;
    let threads = ps_topology::parallel::configured_threads();
    let store = match args.options.get("store") {
        Some(dir) => Some(
            VerdictStore::open(dir)
                .map_err(|e| ArgError(format!("cannot open store `{dir}`: {e}")))?,
        ),
        None => None,
    };
    match (&store, args.options.get("store")) {
        (Some(s), Some(dir)) => println!(
            "psph serve: {threads} threads, store {dir} ({} verdicts on disk)",
            s.len()
        ),
        _ => println!("psph serve: {threads} threads, no store (session cache only)"),
    }
    let reader: Box<dyn std::io::BufRead> = match args.options.get("input") {
        Some(path) => Box::new(std::io::BufReader::new(
            std::fs::File::open(path)
                .map_err(|e| ArgError(format!("cannot open --input `{path}`: {e}")))?,
        )),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };
    let mut engine = QueryEngine::new(threads, opts, store);
    let mut batch: Vec<SweepPoint> = Vec::new();
    let flush_batch =
        |engine: &mut QueryEngine, batch: &mut Vec<SweepPoint>| -> Result<(), ArgError> {
            if batch.is_empty() {
                return Ok(());
            }
            let answers = engine
                .answer_batch(batch)
                .map_err(|e| ArgError(format!("store flush failed: {e}")))?;
            for (q, a) in batch.iter().zip(&answers) {
                println!(
                    "{}: {}  [source={}, {}µs]",
                    describe_query(q),
                    if a.result.solvable {
                        "solvable"
                    } else {
                        "NO decision map"
                    },
                    a.source,
                    a.micros
                );
            }
            batch.clear();
            Ok(())
        };
    for line in reader.lines() {
        let line = line.map_err(|e| ArgError(format!("read error: {e}")))?;
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            flush_batch(&mut engine, &mut batch)?;
            continue;
        }
        match parse_query(line) {
            Ok(q) => batch.push(q),
            Err(e) => println!("parse error (line skipped): {e}"),
        }
    }
    flush_batch(&mut engine, &mut batch)?;
    let m = engine.metrics();
    println!("serve session: {} queries", m.queries);
    println!(
        "  session hits: {}   store hits: {}   solved: {}",
        m.session_hits, m.store_hits, m.solved
    );
    println!(
        "  solver calls: {}   key computations: {}   key skips: {}",
        m.solver_calls, m.key_computations, m.key_skips
    );
    println!(
        "  prepared builds: {}   reuses: {}   persisted: {}",
        m.prepared_builds, m.prepared_reuses, m.persisted
    );
    println!(
        "  latency: mean {}µs, max {}µs",
        m.mean_micros(),
        m.max_micros
    );
    Ok(())
}

/// `psph homology` — the sparse GF(2) homology engine, either on one
/// protocol complex (model mode) or differentially against the dense
/// oracle on a fixed + randomized corpus (corpus mode, the CI gate).
fn homology(args: &Args) -> Result<(), ArgError> {
    let mode = first_positional(args, "mode (async|sync|semisync|corpus)")?;
    if mode == "corpus" {
        homology_corpus(args)
    } else {
        homology_model(args, &mode)
    }
}

/// Model mode: build the protocol complex as an interned `IdComplex`
/// (no label materialization), run [`ps_topology::PreparedBoundary`],
/// and print Betti numbers plus the engine's work counters and timings
/// — the entry point of the CI bench-regression smoke and the
/// EXPERIMENTS.md E20 scaling table.
fn homology_model(args: &Args, model: &str) -> Result<(), ArgError> {
    use ps_agreement::{async_task_parts, semisync_task_parts, sync_task_parts};
    use ps_topology::PreparedBoundary;
    use std::time::Instant;

    let n = args.usize_opt("procs", 3)?;
    let f = args.usize_opt("f", 1)?;
    let k = args.usize_opt("k", 1)?;
    let p = args.usize_opt("p", 2)? as u32;
    let rounds = args.usize_opt("rounds", 1)?;
    let kpr = k.max(1).min(f.max(1));
    let want_oracle = args.flag("oracle");
    // Same value domain as the sweeps: k-set agreement over {0..=k}.
    let values: BTreeSet<u64> = (0..=k as u64).collect();

    let t0 = Instant::now();
    let (id, t_build, oracle) = match model {
        "async" => {
            let (pool, id) = async_task_parts(&values, n, f, rounds);
            let t = t0.elapsed();
            let o = want_oracle.then(|| dense_oracle_timed(&pool, &id));
            (id, t, o)
        }
        "sync" => {
            let (pool, id) = sync_task_parts(&values, n, kpr, f, rounds);
            let t = t0.elapsed();
            let o = want_oracle.then(|| dense_oracle_timed(&pool, &id));
            (id, t, o)
        }
        "semisync" => {
            let (pool, id) = semisync_task_parts(&values, n, kpr, f, p, rounds);
            let t = t0.elapsed();
            let o = want_oracle.then(|| dense_oracle_timed(&pool, &id));
            (id, t, o)
        }
        other => return Err(ArgError(format!("unknown model `{other}`"))),
    };

    let t_basis = Instant::now();
    let mut pb = PreparedBoundary::of_id_complex(&id);
    let t_basis = t_basis.elapsed();

    let t_reduce = Instant::now();
    let betti = pb.betti_mod2();
    let t_reduce = t_reduce.elapsed();

    // Warm re-query: every reduction is cached, so this measures pure
    // cache-hit latency (the incremental-sweep case).
    let t_warm = Instant::now();
    let betti_warm = pb.betti_mod2();
    let t_warm = t_warm.elapsed();
    debug_assert_eq!(betti, betti_warm);

    println!(
        "{model} protocol complex: {n} processes, f = {f}, k = {k} \
         (k/round = {kpr}), r = {rounds}"
    );
    println!(
        "  f-vector: {:?}  ({} vertices, {} facets)",
        pb.f_vector(),
        id.vertex_count(),
        id.facet_count()
    );
    println!("  Euler characteristic: {}", pb.euler_characteristic());
    println!("  reduced mod-2 Betti numbers: {betti:?}");
    let conn = match pb.homological_connectivity() {
        i32::MAX => "∞ (all reduced mod-2 homology vanishes)".to_string(),
        q => q.to_string(),
    };
    println!("  homological connectivity (mod 2): {conn}");
    println!("  boundary columns assembled: {}", pb.assembled_columns());
    println!("  reduction work: {}", pb.stats());
    println!(
        "  time: complex {:.3}s, basis {:.3}s, reduce {:.3}s, warm re-query {:.6}s \
         (threads = {})",
        t_build.as_secs_f64(),
        t_basis.as_secs_f64(),
        t_reduce.as_secs_f64(),
        t_warm.as_secs_f64(),
        ps_topology::parallel::configured_threads()
    );
    if let Some((dense, t_dense)) = oracle {
        let verdict = if dense == betti { "agree" } else { "MISMATCH" };
        println!("  dense oracle: {dense:?} in {t_dense:.3}s — {verdict}");
        if dense != betti {
            return Err(ArgError("sparse engine disagrees with dense oracle".into()));
        }
    }
    Ok(())
}

/// Materializes the labelled complex and times the dense-oracle path
/// (`Homology::betti_mod2_dense`) — the E20 baseline column. Cubic;
/// only sensible for small instances (n ≤ 4).
fn dense_oracle_timed<V: Label>(
    pool: &ps_topology::VertexPool<V>,
    id: &ps_topology::IdComplex,
) -> (Vec<usize>, f64) {
    use ps_topology::Homology;
    let c = Complex::from_interned(pool, id);
    let t = std::time::Instant::now();
    let b = Homology::betti_mod2_dense(&c);
    (b, t.elapsed().as_secs_f64())
}

/// One corpus entry: sparse engine vs dense oracle vs the Euler
/// invariant. Returns the table row and whether all three agree.
fn corpus_row<V: Label>(name: &str, c: &Complex<V>) -> (String, bool) {
    use ps_topology::Homology;
    let sparse = Homology::betti_mod2(c);
    let dense = Homology::betti_mod2_dense(c);
    // Reduced homology: χ = 1 + Σ_d (−1)^d b̃_d for non-void complexes.
    let chi: i64 = 1 + sparse
        .iter()
        .enumerate()
        .map(|(d, &b)| if d % 2 == 0 { b as i64 } else { -(b as i64) })
        .sum::<i64>();
    let euler_ok = c.dim() < 0 || chi == c.euler_characteristic();
    let ok = sparse == dense && euler_ok;
    let verdict = match (sparse == dense, euler_ok) {
        (true, true) => "ok",
        (false, _) => "MISMATCH",
        (true, false) => "EULER MISMATCH",
    };
    let row = format!(
        "{name:<34} {:>3} {:<22} {:<22} {verdict}",
        c.dim(),
        format!("{sparse:?}"),
        format!("{dense:?}")
    );
    (row, ok)
}

/// Corpus mode: fixed topological fixtures, protocol complexes (n ≤ 4),
/// and LCG-randomized small complexes, each pushed through both the
/// sparse engine (`Homology::betti_mod2`) and the dense oracle
/// (`Homology::betti_mod2_dense`) and diffed byte-for-byte. Exits
/// nonzero on any disagreement — the CI homology-equivalence job runs
/// this under `PS_THREADS=1` and the default thread count.
fn homology_corpus(args: &Args) -> Result<(), ArgError> {
    use ps_agreement::{
        async_task_complex, semisync_task_complex, sync_task_complex, KSetAgreement,
    };
    use ps_topology::Simplex;

    let trials = args.usize_opt("trials", 32)?;
    let seed = args.u64_opt("seed", 0xC0FFEE)?;
    let s = |vs: &[u32]| Simplex::from_iter(vs.iter().copied());

    println!(
        "homology corpus: sparse engine vs dense oracle (threads = {})",
        ps_topology::parallel::configured_threads()
    );
    println!(
        "{:<34} {:>3} {:<22} {:<22} verdict",
        "complex", "dim", "betti (sparse)", "betti (dense)"
    );

    let mut rows: Vec<(String, bool)> = Vec::new();

    // Fixed fixtures with known homology.
    let fixed: Vec<(&str, Complex<u32>)> = vec![
        ("void", Complex::from_facets(Vec::<Simplex<u32>>::new())),
        ("point", Complex::from_facets([s(&[0])])),
        ("two points", Complex::from_facets([s(&[0]), s(&[7])])),
        (
            "solid simplex Δ⁴",
            Complex::simplex(Simplex::from_iter(0u32..5)),
        ),
        (
            "circle S¹",
            Complex::from_facets([s(&[0, 1]), s(&[1, 2]), s(&[0, 2])]),
        ),
        (
            "sphere S²",
            Complex::simplex(Simplex::from_iter(0u32..4)).skeleton(2),
        ),
        (
            "sphere S³",
            Complex::simplex(Simplex::from_iter(0u32..5)).skeleton(3),
        ),
        (
            "sphere S⁴",
            Complex::simplex(Simplex::from_iter(0u32..6)).skeleton(4),
        ),
        ("wedge of two circles", {
            Complex::from_facets([
                s(&[0, 1]),
                s(&[1, 2]),
                s(&[0, 2]),
                s(&[0, 3]),
                s(&[3, 4]),
                s(&[0, 4]),
            ])
        }),
        ("wedge of two spheres", {
            let a = Complex::simplex(Simplex::from_iter(0u32..4)).skeleton(2);
            let b = Complex::simplex(Simplex::from_iter([0u32, 4, 5, 6])).skeleton(2);
            let facets: Vec<Simplex<u32>> = a.facets().chain(b.facets()).cloned().collect();
            Complex::from_facets(facets)
        }),
        ("torus T² (Möbius, 7 vertices)", {
            let mut facets = Vec::new();
            for i in 0u32..7 {
                facets.push(Simplex::from_iter([i, (i + 1) % 7, (i + 3) % 7]));
                facets.push(Simplex::from_iter([i, (i + 2) % 7, (i + 3) % 7]));
            }
            Complex::from_facets(facets)
        }),
        ("projective plane RP²₆", {
            let rp2: [[u32; 3]; 10] = [
                [1, 2, 5],
                [1, 2, 6],
                [1, 3, 4],
                [1, 3, 6],
                [1, 4, 5],
                [2, 3, 4],
                [2, 3, 5],
                [2, 4, 6],
                [3, 5, 6],
                [4, 5, 6],
            ];
            Complex::from_facets(rp2.iter().map(|f| Simplex::from_iter(f.iter().copied())))
        }),
        ("disconnected (triangle + edge)", {
            Complex::from_facets([s(&[0, 1, 2]), s(&[4, 5])])
        }),
    ];
    for (name, c) in &fixed {
        rows.push(corpus_row(name, c));
    }

    // Protocol complexes, n ≤ 4 (small enough for the dense oracle).
    let k1 = KSetAgreement::canonical(1);
    let k2 = KSetAgreement::canonical(2);
    rows.push(corpus_row(
        "sync n=3 f=1 k=1 r=1",
        &sync_task_complex(&k1, 3, 1, 1, 1),
    ));
    rows.push(corpus_row(
        "sync n=3 f=1 k=1 r=2",
        &sync_task_complex(&k1, 3, 1, 1, 2),
    ));
    rows.push(corpus_row(
        "sync n=4 f=2 k=2 r=1",
        &sync_task_complex(&k2, 4, 2, 2, 1),
    ));
    rows.push(corpus_row(
        "async n=3 f=1 r=1",
        &async_task_complex(&k1, 3, 1, 1),
    ));
    rows.push(corpus_row(
        "semisync n=3 f=1 k=1 p=2 r=1",
        &semisync_task_complex(&k1, 3, 1, 1, 2, 1),
    ));

    // LCG-randomized small complexes: facets are random subsets of
    // up to 8 vertices, sizes 1..=4 — the same shape as the proptest
    // strategy in tests/homology_sparse_equivalence.rs.
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for t in 0..trials {
        let n_facets = 1 + (next() as usize) % 8;
        let mut facets = Vec::with_capacity(n_facets);
        for _ in 0..n_facets {
            let size = 1 + (next() as usize) % 4;
            let verts: BTreeSet<u32> = (0..size).map(|_| (next() % 8) as u32).collect();
            facets.push(Simplex::from_iter(verts));
        }
        let c = Complex::from_facets(facets);
        rows.push(corpus_row(&format!("random #{t} (seed {seed:#x})"), &c));
    }

    let mut failures = 0usize;
    for (row, ok) in &rows {
        println!("{row}");
        if !ok {
            failures += 1;
        }
    }
    println!("{} complexes checked, {} mismatches", rows.len(), failures);
    if failures > 0 {
        return Err(ArgError(format!(
            "homology corpus: {failures} sparse/dense disagreements"
        )));
    }
    Ok(())
}

fn simulate(args: &Args) -> Result<(), ArgError> {
    let n = args.usize_opt("procs", 4)?;
    let f = args.usize_opt("f", 1)?;
    let k = args.usize_opt("k", 1)?;
    let seeds = args.u64_opt("seeds", 100)?;
    let proto = FloodSet::optimal(f, k);
    let inputs: Vec<u64> = (0..n as u64).collect();
    println!(
        "FloodSet: {n} processes, f = {f}, k = {k}, rounds = {} ; {seeds} random adversaries",
        proto.rounds
    );
    let mut violations = 0usize;
    for seed in 0..seeds {
        let exec = SyncExecutor::new(proto, n, f);
        let mut adv = RandomAdversary::new(seed, f, 0.7);
        let trace = exec.run(&inputs, &mut adv, proto.rounds + 1);
        if !trace.satisfies_k_agreement(k) || !trace.satisfies_termination(n) {
            violations += 1;
        }
    }
    println!(
        "  agreement + termination held in {}/{} runs{}",
        seeds as usize - violations,
        seeds,
        if violations == 0 { " ✓" } else { " ✗" }
    );
    Ok(())
}

fn stretch(args: &Args) -> Result<(), ArgError> {
    let n = args.usize_opt("procs", 3)?;
    let k = args.usize_opt("k", 1)?;
    let c1 = args.u64_opt("c1", 1)?;
    let c2 = args.u64_opt("c2", 4)?;
    let d = args.u64_opt("d", 8)?;
    let params = TimedParams::new(c1, c2, d);
    if args.flag("timeline") {
        use ps_agreement::TimedFloodSet;
        use ps_runtime::{StretchAdversary, TimedExecutor};
        let proto = TimedFloodSet::optimal(n - 1, k);
        let exec = TimedExecutor::new(proto, n, params);
        let inputs: Vec<u64> = (0..n as u64).collect();
        let mut adv = StretchAdversary {
            survivor: ps_core::ProcessId(0),
            crash_at: 0,
        };
        let horizon = params.c2 * params.microrounds() * (proto.rounds + 2) * 4 + 16;
        let trace = exec.run(&inputs, &mut adv, horizon);
        let ticks_per_col = (trace.end_time() / 72).max(1);
        println!("stretch execution timeline (. step, @ delivery, D decide, x crash):\n");
        println!("{}", trace.timeline(n, ticks_per_col));
    }
    let outcome = stretch_experiment(n, k, params);
    println!("Corollary 22 stretch: {n} processes, k = {k}, c1 = {c1}, c2 = {c2}, d = {d}");
    println!("  lower bound ⌊f/k⌋·d + C·d = {:.1} ticks", outcome.bound);
    println!(
        "  stretched survivor decided at {} ticks",
        outcome.decision_time
    );
    println!(
        "  failure-free run finished at {} ticks",
        outcome.failure_free_time
    );
    println!(
        "  bound {}",
        if outcome.respects_bound() {
            "respected ✓"
        } else {
            "VIOLATED ✗"
        }
    );
    Ok(())
}

/// Heavy-traffic throughput run on the unified scheduler: `--n`
/// processes gossiping under the chosen timing policy until
/// `--messages` deliveries, with the always-on invariant checks
/// (chronology, FIFO per channel, delivery accounting) active
/// throughout. `--crashes C` crashes the C highest-numbered processes
/// on a staggered schedule.
fn traffic(args: &Args) -> Result<(), ArgError> {
    let n = args.usize_opt("n", 100)?;
    if n < 2 {
        return Err(ArgError("--n must be at least 2".into()));
    }
    let messages = args.u64_opt("messages", 1_000_000)?;
    let seed = args.u64_opt("seed", 0)?;
    let crashes = args.usize_opt("crashes", 0)?;
    if crashes + 2 > n {
        return Err(ArgError(format!(
            "--crashes must leave at least two processes alive (n = {n})"
        )));
    }
    let c1 = args.u64_opt("c1", 1)?;
    let c2 = args.u64_opt("c2", 2)?;
    let d = args.u64_opt("d", 4)?;
    let horizon = args.u64_opt("horizon", 10_000_000)?;
    let params = TimedParams::new(c1, c2, d);
    let which = args.str_opt("policy", "semisync");
    let crash_map: std::collections::BTreeMap<ProcessId, u64> = (0..crashes)
        .map(|i| (ProcessId((n - 1 - i) as u32), 5 + 7 * i as u64))
        .collect();

    const ALL: [&str; 3] = ["sync", "semisync", "async"];
    let policies: Vec<&str> = match which.as_str() {
        "all" => ALL.to_vec(),
        p => match ALL.iter().find(|x| **x == p) {
            Some(p) => vec![p],
            None => {
                return Err(ArgError(format!(
                    "--policy expects sync|semisync|async|all, got `{p}`"
                )))
            }
        },
    };
    println!(
        "traffic: {n} processes, target {messages} messages, seed {seed}, \
         {crashes} crash(es), c1 = {c1}, c2 = {c2}, d = {d}"
    );
    for name in policies {
        let mut adv = RandomTimedAdversary::new(seed, crash_map.clone());
        let report: TrafficReport = match name {
            "sync" => {
                let mut pol = SyncPolicy::new(&mut adv);
                traffic_run(n, messages, &mut pol, horizon)
            }
            "semisync" => {
                let mut pol = SemisyncPolicy::new(&mut adv, params);
                traffic_run(n, messages, &mut pol, horizon)
            }
            _ => {
                let mut pol = AsyncPolicy::new(&mut adv, params);
                traffic_run(n, messages, &mut pol, horizon)
            }
        };
        println!(
            "  [{:>8}] delivered {} (dropped {}), {} steps, {} crashes; \
             end time {} ticks; {:.2e} events/sec ({:.2?}); invariants {}",
            report.policy,
            report.delivered,
            report.dropped,
            report.steps,
            report.crashes,
            report.end_time,
            report.events_per_sec(),
            report.elapsed,
            if report.invariants_ok {
                "OK"
            } else {
                "VIOLATED"
            }
        );
        if report.delivered < messages && report.end_time >= horizon {
            println!(
                "  [{:>8}] note: horizon {horizon} reached before the message target",
                report.policy
            );
        }
    }
    Ok(())
}

fn chain(args: &Args) -> Result<(), ArgError> {
    use ps_agreement::{sync_task_complex, KSetAgreement};
    use ps_models::View;
    use ps_topology::Simplex;

    let n = args.usize_opt("procs", 3)?;
    if n != 3 {
        return Err(ArgError("chain demo currently supports --procs 3".into()));
    }
    let task = KSetAgreement::canonical(1);
    let complex = sync_task_complex(&task, 3, 1, 1, 1);
    let ff = |vals: [u64; 3]| -> Simplex<View<u64>> {
        let ins: Vec<View<u64>> = vals
            .iter()
            .enumerate()
            .map(|(i, v)| View::Input {
                process: ProcessId(i as u32),
                input: *v,
            })
            .collect();
        Simplex::new(
            (0..3u32)
                .map(|q| View::Round {
                    process: ProcessId(q),
                    heard: ins.iter().map(|v| (v.process(), v.clone())).collect(),
                })
                .collect(),
        )
    };
    let zero = ff([0, 0, 0]);
    let one = ff([1, 1, 1]);
    match indistinguishability_chain(&complex, &zero, &one, 1) {
        Some(links) => {
            println!(
                "indistinguishability chain from all-0 to all-1 one-round\n\
                 synchronous consensus executions ({} links):\n",
                links.len()
            );
            for (i, link) in links.iter().enumerate() {
                println!("  {i:>2}: {link:?}");
            }
            println!(
                "\nvalidity pins the endpoints to decisions 0 and 1, but every\n\
                 link shares a process view — so no 1-round consensus protocol\n\
                 can exist (the §1 chain argument, extracted as a witness)."
            );
        }
        None => println!("no chain — the complex is disconnected at this degree"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distinct values whose Debug forms collide — the worst case for
    /// label export.
    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct Colliding(u32, u32);

    impl std::fmt::Debug for Colliding {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "v{}", self.0) // drops the second coordinate
        }
    }

    #[test]
    fn injective_labels_disambiguates_debug_collisions() {
        use ps_topology::Simplex;
        let mut c = Complex::new();
        // v0 ~ Colliding(0, _) collides three ways; v1 is unique
        c.add_simplex(Simplex::new(vec![Colliding(0, 0), Colliding(0, 1)]));
        c.add_simplex(Simplex::new(vec![Colliding(0, 2), Colliding(1, 0)]));
        let labeled = injective_labels(&c);
        // injective: no vertices merged by the relabeling
        assert_eq!(labeled.vertex_count(), c.vertex_count());
        let labels = labeled.vertex_set();
        assert!(labels.contains("v1"), "unique label stays bare: {labels:?}");
        for l in &labels {
            assert!(
                l == "v1" || l.starts_with("v0#"),
                "colliding labels disambiguated: {l}"
            );
        }
    }
}
