//! Subcommand implementations for `psph`.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use ps_agreement::{
    async_solvable_opts, semisync_solvable_opts, solvability_sweep_opts,
    solvability_sweep_shared_opts, stretch_experiment, sync_solvable_opts, FloodSet, SweepOptions,
    SweepPoint,
};
use ps_core::{process_simplex, MvProver, ProcessId, Pseudosphere};
use ps_models::{input_simplex, AsyncModel, IisModel, SemiSyncModel, SyncModel};
use ps_runtime::{
    traffic_run, AsyncPolicy, RandomAdversary, RandomTimedAdversary, SemisyncPolicy, SyncExecutor,
    SyncPolicy, TimedParams, TrafficReport,
};
use ps_topology::export::{ascii_summary, to_dot, to_off, to_text};
use ps_topology::{indistinguishability_chain, Complex, ConnectivityAnalyzer, Label};

use crate::args::{ArgError, Args};

/// Usage text shown on errors.
pub const USAGE: &str = "\
usage:
  psph figure <1|2a|2b|3> [--out DIR]
  psph complex <async|sync|semisync|iis> [--procs N] [--f F] [--k K]
               [--p P] [--rounds R] [--format summary|dot|off|text]
  psph prove <sync|semisync> [--procs N] [--k K] [--p P] [--level L]
  psph solve <async|sync|semisync> [--procs N] [--f F] [--k K]
               [--p P] [--rounds R] [--symmetry on|off] [--learning on|off]
  psph sweep <async|sync|semisync> [--procs N] [--f F] [--k K]
               [--p P] [--rounds R] [--independent] [--symmetry on|off]
               [--learning on|off]
  psph simulate [--procs N] [--f F] [--k K] [--seeds S]
  psph stretch [--procs N] [--k K] [--c1 T] [--c2 T] [--d T]
  psph traffic [--n N] [--messages M] [--policy sync|semisync|async|all]
               [--seed S] [--crashes C] [--c1 T] [--c2 T] [--d T]
               [--horizon H]
  psph chain [--procs N]

defaults: --procs 3 --f 1 --k 1 --p 2 --rounds 1
global: --threads T  worker threads for homology and sweeps
        (default: all cores; PS_THREADS overrides)
        --symmetry on|off  exploit task symmetries: orbit branching in
        the solver and canonical-form dedupe across sweep groups
        (default: on; verdicts are identical either way)
        --learning on|off  conflict-driven backjumping with nogood
        learning in the decision-map solver
        (default: on; verdicts are identical either way)";

/// Parses `--symmetry on|off` (default `on`).
fn symmetry_opt(args: &Args) -> Result<bool, ArgError> {
    match args.str_opt("symmetry", "on").as_str() {
        "on" | "true" => Ok(true),
        "off" | "false" => Ok(false),
        other => Err(ArgError(format!(
            "--symmetry expects `on` or `off`, got `{other}`"
        ))),
    }
}

/// Parses `--learning on|off` (default `on`).
fn learning_opt(args: &Args) -> Result<bool, ArgError> {
    match args.str_opt("learning", "on").as_str() {
        "on" | "true" => Ok(true),
        "off" | "false" => Ok(false),
        other => Err(ArgError(format!(
            "--learning expects `on` or `off`, got `{other}`"
        ))),
    }
}

/// Builds [`SweepOptions`] from the shared `--symmetry`/`--learning`
/// flags.
fn sweep_options(args: &Args) -> Result<SweepOptions, ArgError> {
    Ok(SweepOptions {
        symmetry: symmetry_opt(args)?,
        learning: learning_opt(args)?,
    })
}

/// Dispatches a parsed command line.
pub fn run(args: &Args) -> Result<(), ArgError> {
    if let Some(t) = args.options.get("threads") {
        let t: usize = t
            .parse()
            .map_err(|_| ArgError(format!("--threads expects an integer, got `{t}`")))?;
        if t == 0 {
            return Err(ArgError("--threads must be at least 1".into()));
        }
        ps_topology::parallel::set_threads(Some(t));
    }
    match args.command.as_deref() {
        Some("figure") => figure(args),
        Some("complex") => complex(args),
        Some("prove") => prove(args),
        Some("solve") => solve(args),
        Some("sweep") => sweep(args),
        Some("simulate") => simulate(args),
        Some("stretch") => stretch(args),
        Some("traffic") => traffic(args),
        Some("chain") => chain(args),
        Some(other) => Err(ArgError(format!("unknown subcommand `{other}`"))),
        None => Err(ArgError("missing subcommand".into())),
    }
}

fn first_positional(args: &Args, what: &str) -> Result<String, ArgError> {
    args.positional
        .first()
        .cloned()
        .ok_or_else(|| ArgError(format!("missing {what}")))
}

/// Maps vertices to their Debug form, disambiguating collisions (deep
/// views render compactly and may collide) by appending `#index`.
fn injective_labels<V: Label>(c: &Complex<V>) -> Complex<String> {
    use std::collections::BTreeMap;
    let verts: Vec<V> = c.vertex_set().into_iter().collect();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for v in &verts {
        *counts.entry(format!("{v:?}")).or_default() += 1;
    }
    c.map(|v| {
        let base = format!("{v:?}");
        if counts[&base] > 1 {
            let idx = verts.binary_search(v).unwrap();
            format!("{base}#{idx}")
        } else {
            base
        }
    })
}

fn render<V: Label>(c: &Complex<V>, title: &str, format: &str) -> Result<String, ArgError> {
    Ok(match format {
        "summary" => {
            let mut out = ascii_summary(c, title);
            let an = ConnectivityAnalyzer::new(c);
            let conn = match an.connectivity() {
                i32::MAX => "∞ (contractible)".to_string(),
                k => k.to_string(),
            };
            let _ = writeln!(out, "connectivity = {conn}");
            out
        }
        "dot" => to_dot(c, title),
        "off" => to_off(c),
        "text" => to_text(&injective_labels(c)),
        other => return Err(ArgError(format!("unknown format `{other}`"))),
    })
}

fn figure(args: &Args) -> Result<(), ArgError> {
    let which = first_positional(args, "figure id (1, 2a, 2b, 3)")?;
    let binary: BTreeSet<u8> = [0, 1].into_iter().collect();
    let (title, c): (String, Complex<(ProcessId, u8)>) = match which.as_str() {
        "1" => (
            "Figure 1: ψ(S²; {0,1})".into(),
            Pseudosphere::uniform(process_simplex(3), binary).realize(),
        ),
        "2a" => (
            "Figure 2a: ψ(S¹; {0,1})".into(),
            Pseudosphere::uniform(process_simplex(2), binary).realize(),
        ),
        "2b" => (
            "Figure 2b: ψ(S¹; {0,1,2})".into(),
            Pseudosphere::uniform(process_simplex(2), (0..3).collect()).realize(),
        ),
        "3" => {
            let model = SyncModel::new(3, 1, 1);
            let input = input_simplex(&[0u8, 1, 2]);
            let c = model.one_round_union(&input).realize();
            println!(
                "{}",
                render(
                    &c,
                    "Figure 3: S¹(S²), ≤1 failure",
                    &args.str_opt("format", "summary")
                )?
            );
            return maybe_write_out(args, "figure3", &c);
        }
        other => return Err(ArgError(format!("unknown figure `{other}`"))),
    };
    println!(
        "{}",
        render(&c, &title, &args.str_opt("format", "summary"))?
    );
    maybe_write_out(args, &format!("figure{which}"), &c)
}

fn maybe_write_out<V: Label>(args: &Args, stem: &str, c: &Complex<V>) -> Result<(), ArgError> {
    if let Some(dir) = args.options.get("out") {
        std::fs::create_dir_all(dir).map_err(|e| ArgError(format!("cannot create {dir}: {e}")))?;
        for (ext, contents) in [
            ("dot", to_dot(c, stem)),
            ("off", to_off(c)),
            ("txt", ascii_summary(c, stem)),
            ("complex", to_text(&injective_labels(c))),
            (
                "svg",
                ps_topology::svg::to_svg(c, stem, &ps_topology::svg::SvgOptions::default()),
            ),
        ] {
            let path = format!("{dir}/{stem}.{ext}");
            std::fs::write(&path, contents)
                .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        }
        println!("wrote {dir}/{stem}.{{dot,off,txt,complex,svg}}");
    }
    Ok(())
}

fn complex(args: &Args) -> Result<(), ArgError> {
    let model = first_positional(args, "model (async|sync|semisync|iis)")?;
    let n = args.usize_opt("procs", 3)?;
    let f = args.usize_opt("f", 1)?;
    let k = args.usize_opt("k", 1)?;
    let p = args.usize_opt("p", 2)? as u32;
    let rounds = args.usize_opt("rounds", 1)?;
    let format = args.str_opt("format", "summary");
    let inputs: Vec<u8> = (0..n as u8).collect();
    let input = input_simplex(&inputs);
    let title = format!("{model} complex, {n} processes, {rounds} round(s)");
    let text = match model.as_str() {
        "async" => {
            let m = AsyncModel::new(n, f);
            render(&m.protocol_complex(&input, rounds), &title, &format)?
        }
        "sync" => {
            let m = SyncModel::new(n, k, f);
            render(&m.protocol_complex(&input, rounds), &title, &format)?
        }
        "semisync" => {
            let m = SemiSyncModel::new(n, k, f, p);
            render(&m.protocol_complex(&input, rounds), &title, &format)?
        }
        "iis" => {
            let m = IisModel::new();
            render(&m.protocol_complex(&input, rounds), &title, &format)?
        }
        other => return Err(ArgError(format!("unknown model `{other}`"))),
    };
    println!("{text}");
    Ok(())
}

fn prove(args: &Args) -> Result<(), ArgError> {
    let model = first_positional(args, "model (sync|semisync)")?;
    let n = args.usize_opt("procs", 3)?;
    let k = args.usize_opt("k", 1)?;
    let p = args.usize_opt("p", 2)? as u32;
    let inputs: Vec<u8> = (0..n as u8).collect();
    let input = input_simplex(&inputs);
    match model.as_str() {
        "sync" => {
            let m = SyncModel::new(n, k, k);
            let union = m.one_round_union(&input);
            let level = args.i32_opt("level", m.claimed_connectivity(n as i32 - 1))?;
            run_prover(&union, level);
        }
        "semisync" => {
            let m = SemiSyncModel::new(n, k, k, p);
            let union = m.one_round_union(&input);
            let level = args.i32_opt("level", m.claimed_connectivity(n as i32 - 1))?;
            run_prover(&union, level);
        }
        other => return Err(ArgError(format!("unknown model `{other}`"))),
    }
    Ok(())
}

fn run_prover<P: Label, U: Label>(union: &ps_core::PseudosphereUnion<P, U>, level: i32) {
    println!(
        "union: {} pseudosphere members; attempting {level}-connectivity\n",
        union.len()
    );
    let mut prover = MvProver::new();
    match prover.prove_k_connected(union, level) {
        Ok(proof) => {
            println!("{proof}");
            let s = prover.stats();
            println!(
                "({} proof nodes; {} leaf evaluations, {} MV applications, {} intersections)",
                proof.size(),
                s.leaf_evaluations,
                s.mv_applications,
                s.intersections
            );
        }
        Err(e) => println!("not provable by the flat MV induction: {e}"),
    }
}

fn solve(args: &Args) -> Result<(), ArgError> {
    let model = first_positional(args, "model (async|sync|semisync)")?;
    let n = args.usize_opt("procs", 3)?;
    let f = args.usize_opt("f", 1)?;
    let k = args.usize_opt("k", 1)?;
    let p = args.usize_opt("p", 2)? as u32;
    let rounds = args.usize_opt("rounds", 1)?;
    let opts = sweep_options(args)?;
    let res = match model.as_str() {
        "async" => async_solvable_opts(k, f, n, rounds, opts),
        "sync" => sync_solvable_opts(k, f, n, k.max(1).min(f.max(1)), rounds, opts),
        "semisync" => semisync_solvable_opts(k, f, n, k.max(1).min(f.max(1)), p, rounds, opts),
        other => return Err(ArgError(format!("unknown model `{other}`"))),
    };
    println!("{model} {k}-set agreement, {n} processes, f = {f}, r = {rounds}:");
    println!(
        "  protocol complex: {} vertices, {} facets",
        res.vertices, res.facets
    );
    if res.solvable {
        println!("  decision map EXISTS (witness found by exhaustive search)");
    } else {
        println!("  NO decision map exists (proved by exhaustive search)");
    }
    Ok(())
}

/// Batched solvability sweep over every `(k, r)` grid point up to the
/// given bounds. By default points differing only in `k` share one
/// interned protocol complex and facet index
/// ([`ps_agreement::solvability_sweep_shared_auto`]); `--independent`
/// restores the per-point canonical-domain path.
fn sweep(args: &Args) -> Result<(), ArgError> {
    let model = first_positional(args, "model (async|sync|semisync)")?;
    let n = args.usize_opt("procs", 3)?;
    let f = args.usize_opt("f", 1)?;
    let k_max = args.usize_opt("k", 1)?;
    let p = args.usize_opt("p", 2)? as u32;
    let r_max = args.usize_opt("rounds", 1)?;
    let mut points = Vec::new();
    for k in 1..=k_max.max(1) {
        for rounds in 1..=r_max.max(1) {
            let k_per_round = k.max(1).min(f.max(1));
            points.push(match model.as_str() {
                "async" => SweepPoint::Async {
                    k,
                    f,
                    n_plus_1: n,
                    rounds,
                },
                "sync" => SweepPoint::Sync {
                    k,
                    f,
                    n_plus_1: n,
                    k_per_round,
                    rounds,
                },
                "semisync" => SweepPoint::SemiSync {
                    k,
                    f,
                    n_plus_1: n,
                    k_per_round,
                    microrounds: p,
                    rounds,
                },
                other => return Err(ArgError(format!("unknown model `{other}`"))),
            });
        }
    }
    let threads = ps_topology::parallel::configured_threads();
    let independent = args.flag("independent");
    let opts = sweep_options(args)?;
    println!(
        "{model} sweep: {n} processes, f = {f}, k = 1..={}, r = 1..={} ({} points, {threads} threads, symmetry {}, learning {})",
        k_max.max(1),
        r_max.max(1),
        points.len(),
        if opts.symmetry { "on" } else { "off" },
        if opts.learning { "on" } else { "off" },
    );
    let results = if independent {
        // legacy per-point path: each point rebuilds its own canonical
        // ({0..k}) protocol complex
        solvability_sweep_opts(&points, threads, opts)
    } else {
        // amortized path: points differing only in k share one interned
        // complex + facet index, solved on the group domain {0..k_max}
        println!(
            "  (amortized: points sharing (model, n, f, r) reuse one complex over the \
             value domain {{0..k_max}}; pass --independent for per-point canonical domains)"
        );
        solvability_sweep_shared_opts(&points, threads, opts)
    };
    println!(
        "  {:>3} {:>3} {:>10} {:>8}  outcome",
        "k", "r", "vertices", "facets"
    );
    for (pt, res) in points.iter().zip(&results) {
        let (k, rounds) = match *pt {
            SweepPoint::Async { k, rounds, .. }
            | SweepPoint::Sync { k, rounds, .. }
            | SweepPoint::SemiSync { k, rounds, .. } => (k, rounds),
        };
        println!(
            "  {:>3} {:>3} {:>10} {:>8}  {}",
            k,
            rounds,
            res.vertices,
            res.facets,
            if res.solvable {
                "solvable"
            } else {
                "NO decision map"
            }
        );
    }
    Ok(())
}

fn simulate(args: &Args) -> Result<(), ArgError> {
    let n = args.usize_opt("procs", 4)?;
    let f = args.usize_opt("f", 1)?;
    let k = args.usize_opt("k", 1)?;
    let seeds = args.u64_opt("seeds", 100)?;
    let proto = FloodSet::optimal(f, k);
    let inputs: Vec<u64> = (0..n as u64).collect();
    println!(
        "FloodSet: {n} processes, f = {f}, k = {k}, rounds = {} ; {seeds} random adversaries",
        proto.rounds
    );
    let mut violations = 0usize;
    for seed in 0..seeds {
        let exec = SyncExecutor::new(proto, n, f);
        let mut adv = RandomAdversary::new(seed, f, 0.7);
        let trace = exec.run(&inputs, &mut adv, proto.rounds + 1);
        if !trace.satisfies_k_agreement(k) || !trace.satisfies_termination(n) {
            violations += 1;
        }
    }
    println!(
        "  agreement + termination held in {}/{} runs{}",
        seeds as usize - violations,
        seeds,
        if violations == 0 { " ✓" } else { " ✗" }
    );
    Ok(())
}

fn stretch(args: &Args) -> Result<(), ArgError> {
    let n = args.usize_opt("procs", 3)?;
    let k = args.usize_opt("k", 1)?;
    let c1 = args.u64_opt("c1", 1)?;
    let c2 = args.u64_opt("c2", 4)?;
    let d = args.u64_opt("d", 8)?;
    let params = TimedParams::new(c1, c2, d);
    if args.flag("timeline") {
        use ps_agreement::TimedFloodSet;
        use ps_runtime::{StretchAdversary, TimedExecutor};
        let proto = TimedFloodSet::optimal(n - 1, k);
        let exec = TimedExecutor::new(proto, n, params);
        let inputs: Vec<u64> = (0..n as u64).collect();
        let mut adv = StretchAdversary {
            survivor: ps_core::ProcessId(0),
            crash_at: 0,
        };
        let horizon = params.c2 * params.microrounds() * (proto.rounds + 2) * 4 + 16;
        let trace = exec.run(&inputs, &mut adv, horizon);
        let ticks_per_col = (trace.end_time() / 72).max(1);
        println!("stretch execution timeline (. step, @ delivery, D decide, x crash):\n");
        println!("{}", trace.timeline(n, ticks_per_col));
    }
    let outcome = stretch_experiment(n, k, params);
    println!("Corollary 22 stretch: {n} processes, k = {k}, c1 = {c1}, c2 = {c2}, d = {d}");
    println!("  lower bound ⌊f/k⌋·d + C·d = {:.1} ticks", outcome.bound);
    println!(
        "  stretched survivor decided at {} ticks",
        outcome.decision_time
    );
    println!(
        "  failure-free run finished at {} ticks",
        outcome.failure_free_time
    );
    println!(
        "  bound {}",
        if outcome.respects_bound() {
            "respected ✓"
        } else {
            "VIOLATED ✗"
        }
    );
    Ok(())
}

/// Heavy-traffic throughput run on the unified scheduler: `--n`
/// processes gossiping under the chosen timing policy until
/// `--messages` deliveries, with the always-on invariant checks
/// (chronology, FIFO per channel, delivery accounting) active
/// throughout. `--crashes C` crashes the C highest-numbered processes
/// on a staggered schedule.
fn traffic(args: &Args) -> Result<(), ArgError> {
    let n = args.usize_opt("n", 100)?;
    if n < 2 {
        return Err(ArgError("--n must be at least 2".into()));
    }
    let messages = args.u64_opt("messages", 1_000_000)?;
    let seed = args.u64_opt("seed", 0)?;
    let crashes = args.usize_opt("crashes", 0)?;
    if crashes + 2 > n {
        return Err(ArgError(format!(
            "--crashes must leave at least two processes alive (n = {n})"
        )));
    }
    let c1 = args.u64_opt("c1", 1)?;
    let c2 = args.u64_opt("c2", 2)?;
    let d = args.u64_opt("d", 4)?;
    let horizon = args.u64_opt("horizon", 10_000_000)?;
    let params = TimedParams::new(c1, c2, d);
    let which = args.str_opt("policy", "semisync");
    let crash_map: std::collections::BTreeMap<ProcessId, u64> = (0..crashes)
        .map(|i| (ProcessId((n - 1 - i) as u32), 5 + 7 * i as u64))
        .collect();

    const ALL: [&str; 3] = ["sync", "semisync", "async"];
    let policies: Vec<&str> = match which.as_str() {
        "all" => ALL.to_vec(),
        p => match ALL.iter().find(|x| **x == p) {
            Some(p) => vec![p],
            None => {
                return Err(ArgError(format!(
                    "--policy expects sync|semisync|async|all, got `{p}`"
                )))
            }
        },
    };
    println!(
        "traffic: {n} processes, target {messages} messages, seed {seed}, \
         {crashes} crash(es), c1 = {c1}, c2 = {c2}, d = {d}"
    );
    for name in policies {
        let mut adv = RandomTimedAdversary::new(seed, crash_map.clone());
        let report: TrafficReport = match name {
            "sync" => {
                let mut pol = SyncPolicy::new(&mut adv);
                traffic_run(n, messages, &mut pol, horizon)
            }
            "semisync" => {
                let mut pol = SemisyncPolicy::new(&mut adv, params);
                traffic_run(n, messages, &mut pol, horizon)
            }
            _ => {
                let mut pol = AsyncPolicy::new(&mut adv, params);
                traffic_run(n, messages, &mut pol, horizon)
            }
        };
        println!(
            "  [{:>8}] delivered {} (dropped {}), {} steps, {} crashes; \
             end time {} ticks; {:.2e} events/sec ({:.2?}); invariants {}",
            report.policy,
            report.delivered,
            report.dropped,
            report.steps,
            report.crashes,
            report.end_time,
            report.events_per_sec(),
            report.elapsed,
            if report.invariants_ok {
                "OK"
            } else {
                "VIOLATED"
            }
        );
        if report.delivered < messages && report.end_time >= horizon {
            println!(
                "  [{:>8}] note: horizon {horizon} reached before the message target",
                report.policy
            );
        }
    }
    Ok(())
}

fn chain(args: &Args) -> Result<(), ArgError> {
    use ps_agreement::{sync_task_complex, KSetAgreement};
    use ps_models::View;
    use ps_topology::Simplex;

    let n = args.usize_opt("procs", 3)?;
    if n != 3 {
        return Err(ArgError("chain demo currently supports --procs 3".into()));
    }
    let task = KSetAgreement::canonical(1);
    let complex = sync_task_complex(&task, 3, 1, 1, 1);
    let ff = |vals: [u64; 3]| -> Simplex<View<u64>> {
        let ins: Vec<View<u64>> = vals
            .iter()
            .enumerate()
            .map(|(i, v)| View::Input {
                process: ProcessId(i as u32),
                input: *v,
            })
            .collect();
        Simplex::new(
            (0..3u32)
                .map(|q| View::Round {
                    process: ProcessId(q),
                    heard: ins.iter().map(|v| (v.process(), v.clone())).collect(),
                })
                .collect(),
        )
    };
    let zero = ff([0, 0, 0]);
    let one = ff([1, 1, 1]);
    match indistinguishability_chain(&complex, &zero, &one, 1) {
        Some(links) => {
            println!(
                "indistinguishability chain from all-0 to all-1 one-round\n\
                 synchronous consensus executions ({} links):\n",
                links.len()
            );
            for (i, link) in links.iter().enumerate() {
                println!("  {i:>2}: {link:?}");
            }
            println!(
                "\nvalidity pins the endpoints to decisions 0 and 1, but every\n\
                 link shares a process view — so no 1-round consensus protocol\n\
                 can exist (the §1 chain argument, extracted as a witness)."
            );
        }
        None => println!("no chain — the complex is disconnected at this degree"),
    }
    Ok(())
}
