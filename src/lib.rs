//! # pseudosphere — unifying synchronous and asynchronous message-passing
//!
//! A complete, executable reproduction of *Unifying Synchronous and
//! Asynchronous Message-Passing Models* (Herlihy, Rajsbaum, Tuttle,
//! PODC 1998). The paper shows that the protocol complexes of the
//! synchronous, semi-synchronous, and asynchronous message-passing models
//! are all unions of **pseudospheres**, and derives consensus and k-set
//! agreement lower bounds from the connectivity of those unions.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`topology`] — simplicial complexes, homology, connectivity
//!   certificates, Sperner machinery (the paper's §3);
//! * [`core`] — pseudospheres, unions, the Mayer–Vietoris prover (§5);
//! * [`models`] — protocol complexes for the asynchronous (§6),
//!   synchronous (§7), and semi-synchronous (§8) models;
//! * [`runtime`] — a deterministic discrete-event message-passing
//!   simulator whose exhaustively enumerated executions regenerate those
//!   complexes;
//! * [`agreement`] — decision tasks, protocols (FloodSet, timeout-based
//!   semi-synchronous agreement), and the exhaustive decision-map solver
//!   used for the impossibility experiments.
//!
//! # Quickstart
//!
//! ```
//! use pseudosphere::core::{process_simplex, Pseudosphere};
//! use pseudosphere::topology::Homology;
//!
//! // Figure 1 of the paper: the 3-process binary pseudosphere is S².
//! let ps = Pseudosphere::uniform(process_simplex(3), [0u8, 1].into_iter().collect());
//! let h = Homology::reduced(&ps.realize());
//! assert_eq!(h.betti(2), 1);
//! ```

#![warn(missing_docs)]

pub use ps_agreement as agreement;
pub use ps_core as core;
pub use ps_models as models;
pub use ps_runtime as runtime;
pub use ps_symmetry as symmetry;
pub use ps_topology as topology;
