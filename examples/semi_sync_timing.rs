//! Corollary 22: wait-free semi-synchronous k-set agreement takes time
//! at least ⌊f/k⌋·d + C·d, with C = c2/c1.
//!
//! Sweeps the timing-uncertainty ratio C and the agreement parameter k,
//! measuring (a) the survivor's decision time under the paper's stretch
//! adversary and (b) the failure-free time, against the bound.
//!
//! ```bash
//! cargo run --release --example semi_sync_timing
//! ```

use pseudosphere::agreement::stretch_experiment;
use pseudosphere::runtime::TimedParams;

fn main() {
    println!("Corollary 22: wait-free k-set agreement timing (d = 8 ticks)");
    println!(
        "{:>4} {:>3} {:>3} {:>6} {:>10} {:>12} {:>12} {:>6}",
        "n+1", "k", "C", "bound", "stretched", "failure-free", "ratio", "ok?"
    );
    let d = 8u64;
    for n_plus_1 in [3usize, 4] {
        for k in [1usize, 2] {
            for c2 in [1u64, 2, 4, 8, 16] {
                let params = TimedParams::new(1, c2, d);
                let outcome = stretch_experiment(n_plus_1, k, params);
                let ratio = outcome.decision_time as f64 / outcome.bound;
                println!(
                    "{:>4} {:>3} {:>3} {:>6.0} {:>10} {:>12} {:>12.2} {:>6}",
                    n_plus_1,
                    k,
                    c2,
                    outcome.bound,
                    outcome.decision_time,
                    outcome.failure_free_time,
                    ratio,
                    if outcome.respects_bound() {
                        "yes"
                    } else {
                        "NO"
                    },
                );
            }
        }
        println!();
    }
    println!("reading: the stretched decision time always dominates the bound");
    println!("⌊f/k⌋·d + C·d, grows linearly in C (the Cd term: the survivor's");
    println!("step-counted timeout runs at speed c2), and the failure-free time");
    println!("stays near (⌊f/k⌋+1)·d — the shape of the paper's Corollary 22.");
}
