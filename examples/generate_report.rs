//! Regenerates the measured numbers behind EXPERIMENTS.md in one run and
//! writes `experiments_report.txt`.
//!
//! ```bash
//! cargo run --release --example generate_report
//! ```

use std::collections::BTreeSet;
use std::fmt::Write as _;

use pseudosphere::agreement::{
    async_approximate_solvable, async_solvable, corollary10_async, stretch_experiment,
    sync_solvable,
};
use pseudosphere::core::{process_simplex, MvProver, Pseudosphere};
use pseudosphere::models::{input_simplex, AsyncModel, IisModel, SemiSyncModel, SyncModel};
use pseudosphere::runtime::TimedParams;
use pseudosphere::topology::{ConnectivityAnalyzer, Homology};

fn main() {
    let mut r = String::new();
    let _ = writeln!(r, "pseudosphere experiment report");
    let _ = writeln!(r, "==============================\n");

    // E1/E2: figures
    let fig1 = Pseudosphere::uniform(process_simplex(3), [0u8, 1].into_iter().collect());
    let c1 = fig1.realize();
    let h1 = Homology::reduced(&c1);
    let _ = writeln!(
        r,
        "E1 Figure 1: f-vector {:?}, euler {}, homology [{}]",
        c1.f_vector(),
        c1.euler_characteristic(),
        h1
    );
    let fig2b = Pseudosphere::uniform(process_simplex(2), [0u8, 1, 2].into_iter().collect());
    let _ = writeln!(
        r,
        "E2 Figure 2b: f-vector {:?}, wedge size {} (= top Betti {})",
        fig2b.realize().f_vector(),
        fig2b.wedge_size(),
        Homology::reduced(&fig2b.realize()).betti(1)
    );

    // E3: figure 3 + connectivity
    let sync = SyncModel::new(3, 1, 1);
    let input3 = input_simplex(&[0u8, 1, 2]);
    let union3 = sync.one_round_union(&input3);
    let c3 = union3.realize();
    let _ = writeln!(
        r,
        "E3 Figure 3: {} members, f-vector {:?}, H~1 = Z^{}",
        union3.len(),
        c3.f_vector(),
        Homology::reduced(&c3).betti(1)
    );

    // E5: prover vs homology on Figure 3
    let proof = MvProver::new().prove_k_connected(&union3, 0);
    let _ = writeln!(
        r,
        "E5 MV prover certifies S¹(S²) 0-connected: {} ({} nodes); homology agrees: {}",
        proof.is_ok(),
        proof.as_ref().map(|p| p.size()).unwrap_or(0),
        ConnectivityAnalyzer::new(&c3).is_k_connected(0).is_yes()
    );

    // E7: Lemma 11 counts
    let asy = AsyncModel::new(3, 1);
    let _ = writeln!(
        r,
        "E7 Lemma 11: A¹ pseudosphere facets {} == view complex facets {}",
        asy.one_round_pseudosphere(&input3).facet_count(),
        asy.one_round_complex(&input3).facet_count()
    );

    // E8: async impossibility sweep
    let _ = writeln!(r, "\nE8 Corollary 13 (async, 3 processes):");
    for (k, f, rounds) in [
        (1usize, 1usize, 1usize),
        (1, 1, 2),
        (1, 2, 1),
        (2, 2, 1),
        (2, 1, 1),
    ] {
        let res = async_solvable(k, f, 3, rounds);
        let _ = writeln!(
            r,
            "  k={k} f={f} r={rounds}: {} ({} vertices, {} facets)",
            if res.solvable {
                "map exists"
            } else {
                "no map (proof)"
            },
            res.vertices,
            res.facets
        );
    }
    let c10 = corollary10_async(1, 3, 1);
    let _ = writeln!(
        r,
        "  Corollary 10 bridge: hypothesis {}, conclusion {}, consistent {}",
        c10.hypothesis_holds,
        c10.no_decision_map,
        c10.consistent()
    );

    // E10: sync staircase
    let _ = writeln!(r, "\nE10 Theorem 18 staircase (sync):");
    for (n, f, k) in [(3usize, 1usize, 1usize), (4, 1, 1), (3, 1, 2), (3, 2, 2)] {
        let mut row = format!("  n+1={n} f={f} k={k}:");
        for rounds in 0..=(f / k + 1) {
            let res = sync_solvable(k, f, n, f.min(k.max(1)), rounds);
            let _ = write!(
                row,
                " r{rounds}={}",
                if res.solvable { "YES" } else { "no" }
            );
        }
        let bound = SyncModel::theorem18_round_bound(n - 1, f, k);
        let _ = writeln!(r, "{row}   (Theorem 18 bound = {bound})");
    }

    // E11: semisync member counts and Lemma 21
    let _ = writeln!(r, "\nE11 semi-sync one-round structure:");
    for p in [1u32, 2, 3] {
        let m = SemiSyncModel::new(3, 1, 1, p);
        let u = m.one_round_union(&input3);
        let ok = MvProver::new().prove_k_connected(&u, 0).is_ok();
        let _ = writeln!(
            r,
            "  p={p}: {} members, prover certifies 0-connected: {ok}",
            u.len()
        );
    }

    // E12: stretch sweep
    let _ = writeln!(r, "\nE12 Corollary 22 stretch (d = 8):");
    for c2 in [1u64, 2, 4, 8, 16] {
        let params = TimedParams::new(1, c2, 8);
        let o = stretch_experiment(3, 1, params);
        let _ = writeln!(
            r,
            "  C={c2}: bound {:.0}, stretched {}, failure-free {}, respected {}",
            o.bound,
            o.decision_time,
            o.failure_free_time,
            o.respects_bound()
        );
    }

    // approximate agreement contrast
    let values: BTreeSet<u64> = (0..=2).collect();
    let exact = async_approximate_solvable(0, &values, 1, 3, 1);
    let coarse = async_approximate_solvable(2, &values, 1, 3, 1);
    let mid = async_approximate_solvable(1, &values, 1, 3, 1);
    let _ = writeln!(
        r,
        "\nApproximate agreement (async, f=1, values 0..=2, 1 round):\n  \
         range 0 (consensus): {}; range 1: {}; range 2: {}",
        if exact.solvable {
            "solvable"
        } else {
            "impossible"
        },
        if mid.solvable {
            "solvable"
        } else {
            "impossible"
        },
        if coarse.solvable {
            "solvable"
        } else {
            "impossible"
        },
    );

    // IIS baseline
    let iis = IisModel::new().one_round_complex(&input3);
    let _ = writeln!(
        r,
        "\nIIS baseline: {} facets (ordered Bell(3) = 13), contractible: {}",
        iis.facet_count(),
        Homology::reduced(&iis).homological_connectivity() == i32::MAX
    );

    print!("{r}");
    std::fs::write("experiments_report.txt", &r).expect("write report");
    println!("\nwrote experiments_report.txt");
}
