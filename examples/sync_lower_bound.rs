//! Theorem 18: synchronous k-set agreement needs ⌊f/k⌋ + 1 rounds.
//!
//! Two independent methods per row:
//!  * solver — exhaustive decision-map search on S^r (lower bound side);
//!  * FloodSet — the matching protocol simulated against randomized
//!    crash adversaries (upper bound side).
//!
//! ```bash
//! cargo run --release --example sync_lower_bound
//! ```

use pseudosphere::agreement::{sync_solvable, FloodSet};
use pseudosphere::runtime::{RandomAdversary, SyncExecutor};

fn floodset_agrees(n_plus_1: usize, f: usize, k: usize, rounds: usize, seeds: u64) -> bool {
    let proto = FloodSet::new(rounds);
    (0..seeds).all(|seed| {
        let exec = SyncExecutor::new(proto, n_plus_1, f);
        let mut adv = RandomAdversary::new(seed, f, 0.7);
        let inputs: Vec<u64> = (0..n_plus_1 as u64).collect();
        let trace = exec.run(&inputs, &mut adv, rounds + 1);
        trace.satisfies_k_agreement(k) && trace.satisfies_termination(n_plus_1)
    })
}

fn main() {
    println!("Theorem 18: synchronous k-set agreement round sweep");
    println!(
        "{:>4} {:>3} {:>3} {:>3} {:>6} {:>12} {:>18}",
        "n+1", "f", "k", "r", "bound", "solver", "FloodSet(200 adv)"
    );

    let instances: [(usize, usize, usize); 4] = [(3, 1, 1), (4, 1, 1), (3, 1, 2), (3, 2, 2)];
    for (n_plus_1, f, k) in instances {
        let n = n_plus_1 - 1;
        let bound = if n > f + k { f / k + 1 } else { f / k };
        for r in 0..=(f / k + 1) {
            let solver = sync_solvable(k, f, n_plus_1, f.min(k.max(1)), r);
            let fs = if r >= 1 {
                if floodset_agrees(n_plus_1, f, k, r, 200) {
                    "agrees"
                } else {
                    "VIOLATES"
                }
            } else {
                "-"
            };
            println!(
                "{n_plus_1:>4} {f:>3} {k:>3} {r:>3} {bound:>6} {:>12} {fs:>18}",
                if solver.solvable {
                    "map exists"
                } else {
                    "no map"
                },
            );
        }
        println!();
    }
    println!("reading: the 'bound' column is Theorem 18's guarantee (⌊f/k⌋+1 when");
    println!("n > f+k, else the weaker ⌊f/k⌋). The solver staircase flips from");
    println!("'no map' to 'map exists' at exactly ⌊f/k⌋+1 rounds — in the n ≤ f+k");
    println!("consensus rows the solver proves the stronger classical f+1 bound");
    println!("that Theorem 18's degenerate case leaves open. FloodSet only");
    println!("'agrees' from that flip point upward.");
}
