//! Quickstart: pseudospheres, homology, and the Mayer–Vietoris prover.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use pseudosphere::core::{process_simplex, MvProver, Pseudosphere, PseudosphereUnion};
use pseudosphere::topology::{ConnectivityAnalyzer, Homology};
use std::collections::BTreeSet;

fn main() {
    // ── 1. Build the paper's Figure 1: three processes, binary values ──
    let values: BTreeSet<u8> = [0, 1].into_iter().collect();
    let ps = Pseudosphere::uniform(process_simplex(3), values);
    println!("Figure 1 pseudosphere: {ps:?}");
    println!(
        "  {} facets, {} vertices, dimension {}",
        ps.facet_count(),
        ps.vertex_count(),
        ps.dim()
    );

    // ── 2. Realize it and compute homology: it is a 2-sphere ──
    let complex = ps.realize();
    println!("  f-vector = {:?}", complex.f_vector());
    let h = Homology::reduced(&complex);
    println!("  reduced homology: {h}");
    println!(
        "  connectivity (certified): {}",
        ConnectivityAnalyzer::new(&complex).connectivity()
    );

    // ── 3. Corollary 8 via the Mayer–Vietoris prover ──
    // ψ(S²;{0,1}) ∪ ψ(S²;{0,2}) share the value 0, so the union is
    // 1-connected — certified symbolically, without homology.
    let base = process_simplex(3);
    let union: PseudosphereUnion<_, u8> = [
        Pseudosphere::uniform(base.clone(), [0, 1].into_iter().collect()),
        Pseudosphere::uniform(base, [0, 2].into_iter().collect()),
    ]
    .into_iter()
    .collect();
    let proof = MvProver::new()
        .prove_k_connected(&union, 1)
        .expect("Corollary 8 applies");
    println!("\nCorollary 8 derivation ({} nodes):", proof.size());
    println!("{proof}");
}
