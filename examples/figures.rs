//! Regenerates the paper's Figures 1–3 as DOT / OFF / text files.
//!
//! ```bash
//! cargo run --example figures [output-dir]     # default: ./figures-out
//! ```

use pseudosphere::core::{process_simplex, Pseudosphere};
use pseudosphere::models::{input_simplex, SyncModel};
use pseudosphere::topology::export::{ascii_summary, to_dot, to_off};
use pseudosphere::topology::svg::{to_svg, SvgOptions};
use pseudosphere::topology::{Complex, Label};
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

fn emit<V: Label>(dir: &Path, name: &str, title: &str, c: &Complex<V>) {
    fs::write(dir.join(format!("{name}.dot")), to_dot(c, title)).expect("write dot");
    fs::write(dir.join(format!("{name}.off")), to_off(c)).expect("write off");
    fs::write(dir.join(format!("{name}.txt")), ascii_summary(c, title)).expect("write txt");
    fs::write(
        dir.join(format!("{name}.svg")),
        to_svg(c, title, &SvgOptions::default()),
    )
    .expect("write svg");
    println!("{}", ascii_summary(c, title));
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "figures-out".to_string());
    let dir = Path::new(&dir);
    fs::create_dir_all(dir).expect("create output dir");

    // ── Figure 1: the three-process binary pseudosphere (an S²) ──
    let binary: BTreeSet<u8> = [0, 1].into_iter().collect();
    let fig1 = Pseudosphere::uniform(process_simplex(3), binary.clone()).realize();
    emit(
        dir,
        "figure1",
        "Figure 1: ψ(S²; {0,1}) — octahedron ≃ S²",
        &fig1,
    );

    // ── Figure 2: ψ(S¹;{0,1}) and ψ(S¹;{0,1,2}) ──
    let fig2a = Pseudosphere::uniform(process_simplex(2), binary).realize();
    emit(
        dir,
        "figure2a",
        "Figure 2a: ψ(S¹; {0,1}) — a 4-cycle ≃ S¹",
        &fig2a,
    );
    let ternary: BTreeSet<u8> = [0, 1, 2].into_iter().collect();
    let fig2b = Pseudosphere::uniform(process_simplex(2), ternary).realize();
    emit(
        dir,
        "figure2b",
        "Figure 2b: ψ(S¹; {0,1,2}) — K_{3,3} ≃ wedge of 4 circles",
        &fig2b,
    );

    // ── Figure 3: one-round synchronous 3-process complex, ≤ 1 failure ──
    let model = SyncModel::new(3, 1, 1);
    let input = input_simplex(&[0u8, 1, 2]);
    let union = model.one_round_union(&input);
    println!("Figure 3 members (union of pseudospheres):");
    for m in union.members() {
        println!("  ∪ {m:?}");
    }
    let fig3 = union.realize();
    emit(
        dir,
        "figure3",
        "Figure 3: S¹(S²) with ≤1 failure — triangle + three squares",
        &fig3,
    );

    println!("wrote figures to {}", dir.display());
}
