//! Protocol-complex explorer: build and summarize the one-round (and
//! r-round) complexes of all four round structures side by side.
//!
//! ```bash
//! cargo run --release --example model_explorer [n_plus_1] [rounds]
//! ```
//! Defaults: 3 processes, 1 round. Prints facet/vertex counts, claimed
//! vs. certified connectivity, and the union-of-pseudospheres member
//! lists that make the paper's unification visible.

use pseudosphere::core::MvProver;
use pseudosphere::models::{input_simplex, AsyncModel, IisModel, SemiSyncModel, SyncModel};
use pseudosphere::topology::{ConnectivityAnalyzer, Label};

fn show_connectivity(conn: i32) -> String {
    match conn {
        i32::MAX => "∞ (contractible)".to_string(),
        c => format!("{c}"),
    }
}

fn summarize<V: Label>(name: &str, c: &pseudosphere::topology::Complex<V>, claimed: Option<i32>) {
    let an = ConnectivityAnalyzer::new(c);
    println!(
        "  {name:<28} {:>7} facets {:>7} vertices  conn = {}{}",
        c.facet_count(),
        c.vertex_count(),
        show_connectivity(an.connectivity()),
        match claimed {
            Some(k) => format!("  (paper claims ≥ {k})"),
            None => String::new(),
        }
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_plus_1: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let rounds: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let n = n_plus_1 as i32 - 1;
    let inputs: Vec<u8> = (0..n_plus_1 as u8).collect();
    let input = input_simplex(&inputs);

    println!("protocol complexes: {n_plus_1} processes, {rounds} round(s)\n");

    // ── asynchronous (§6) ──
    for f in 1..n_plus_1.min(3) {
        let model = AsyncModel::new(n_plus_1, f);
        let c = model.protocol_complex(&input, rounds);
        summarize(
            &format!("async f={f}"),
            &c,
            Some(model.claimed_connectivity(n)),
        );
    }

    // ── synchronous (§7) ──
    for k in 1..n_plus_1.min(3) {
        let model = SyncModel::new(n_plus_1, k, k);
        let c = model.protocol_complex(&input, rounds);
        let claimed = (n as usize >= 2 * k).then(|| model.claimed_connectivity(n));
        summarize(&format!("sync k={k}/round"), &c, claimed);
    }

    // ── semi-synchronous (§8) ──
    for p in [1u32, 2] {
        let model = SemiSyncModel::new(n_plus_1, 1, 1, p);
        let c = model.protocol_complex(&input, rounds);
        let claimed = (n >= 2).then(|| model.claimed_connectivity(n));
        summarize(&format!("semi-sync k=1, p={p}"), &c, claimed);
    }

    // ── IIS baseline (§2) ──
    let iis = IisModel::new();
    let c = iis.protocol_complex(&input, rounds);
    summarize("iterated immediate snapshot", &c, None);

    // ── the unification: one-round unions of pseudospheres ──
    println!("\none-round union-of-pseudospheres structure:");
    let sync = SyncModel::new(n_plus_1, 1, 1);
    let union = sync.one_round_union(&input);
    println!(
        "  sync k=1: {} members (∅ + one per failure set)",
        union.len()
    );
    let ss = SemiSyncModel::new(n_plus_1, 1, 1, 2);
    let ss_union = ss.one_round_union(&input);
    println!(
        "  semi-sync k=1, p=2: {} members (one per (K, F) pair)",
        ss_union.len()
    );
    let asy = AsyncModel::new(n_plus_1, 1);
    println!(
        "  async f=1: 1 member — ψ with {} facets (Lemma 11)",
        asy.one_round_pseudosphere(&input).facet_count()
    );

    // certify the sync union's best provable connectivity with a proof tree
    if n as usize >= 2 {
        match MvProver::new().best_provable(&union, n) {
            Some((level, proof)) => {
                println!(
                    "\nMayer–Vietoris certificate: sync S¹ is {level}-connected \
                     (best provable; {} proof nodes):\n{proof}",
                    proof.size()
                );
            }
            None => println!("\nprover: nothing provable (void union)"),
        }
    }
}
