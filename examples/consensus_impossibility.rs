//! Asynchronous k-set agreement impossibility (Corollary 13), checked
//! exhaustively: builds the r-round asynchronous protocol complex over
//! the full input complex and searches for a decision map.
//!
//! ```bash
//! cargo run --release --example consensus_impossibility
//! ```

use pseudosphere::agreement::{allowed_values, async_solvable, async_task_complex, KSetAgreement};
use pseudosphere::topology::ConnectivityAnalyzer;

fn main() {
    println!("Corollary 13: no asynchronous f-resilient k-set agreement for k ≤ f");
    println!("(exhaustive decision-map search over A^r, 3 processes)\n");
    println!(
        "{:>3} {:>3} {:>3} {:>9} {:>8} {:>10}",
        "k", "f", "r", "vertices", "facets", "solvable?"
    );

    // (k, f, rounds): r = 2 only for f = 1, where A² stays small —
    // with f = 2 the heard-set families explode combinatorially.
    let sweep: [(usize, usize, usize); 5] = [(1, 1, 2), (1, 2, 1), (2, 2, 1), (2, 1, 1), (3, 2, 1)];
    for (k, f, max_r) in sweep {
        for r in 1..=max_r {
            let res = async_solvable(k, f, 3, r);
            let verdict = if res.solvable { "YES" } else { "no (proof)" };
            let marker = if k <= f {
                "k ≤ f ⇒ expect no"
            } else {
                "k > f ⇒ expect yes"
            };
            println!(
                "{k:>3} {f:>3} {r:>3} {:>9} {:>8} {verdict:>10}   {marker}",
                res.vertices, res.facets
            );
        }
    }

    // the topological reason: the protocol complex stays (k-1)-connected
    println!("\nwhy: connectivity of A¹ over the canonical input complex");
    for f in 1..=2usize {
        let task = KSetAgreement::canonical(f); // k = f
        let complex = async_task_complex(&task, 3, f, 1);
        let an = ConnectivityAnalyzer::new(&complex);
        println!(
            "  f = k = {f}: A¹ is {}-connected (needs to fail ({}−1)-connectivity for a map to exist)",
            an.connectivity(),
            f
        );
        let _ = allowed_values; // (validity domains used inside the solver)
    }
}
