//! Equivalence guarantees of the symmetry layer (`ps-symmetry` and its
//! wiring into `ps-agreement`):
//!
//! * canonical forms are **relabeling-invariant** — applying a random
//!   vertex permutation (with colors transported) to a colored complex
//!   never changes the exact canonical key;
//! * **orbit branching never changes a verdict** — the symmetry-pruned
//!   solver agrees with the unpruned solver on randomized small grids
//!   and on full `n ≤ 3` / sync `n = 4` sweep grids, both through the
//!   per-point path and through the shared (canonically deduped) sweep.

use proptest::prelude::*;
use pseudosphere::agreement::{
    solvability_sweep_opts, solvability_sweep_shared_opts, SweepOptions, SweepPoint,
};
use pseudosphere::symmetry::{all_permutations, canonical_form, Perm, DEFAULT_BUDGET};

/// Applies `sigma` to a facet list and transports colors along it:
/// vertex `v` becomes `sigma(v)` carrying its old color.
fn relabel(facets: &[Vec<u32>], colors: &[u32], sigma: &Perm) -> (Vec<Vec<u32>>, Vec<u32>) {
    let mut new_colors = vec![0u32; colors.len()];
    for (v, &c) in colors.iter().enumerate() {
        new_colors[sigma.apply(v as u32) as usize] = c;
    }
    let new_facets = facets
        .iter()
        .map(|f| f.iter().map(|&v| sigma.apply(v)).collect())
        .collect();
    (new_facets, new_colors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The exact canonical key of a colored complex is invariant under
    /// every relabeling of its vertices.
    #[test]
    fn canonical_key_invariant_under_relabeling(
        raw_facets in prop::collection::vec(
            prop::collection::btree_set(0u32..6, 1..=4usize), 1..=5usize),
        colors in prop::collection::vec(0u32..3, 6),
        perm_index in 0usize..720,
    ) {
        let n = 6usize;
        let facets: Vec<Vec<u32>> = raw_facets
            .into_iter()
            .map(|f| f.into_iter().collect())
            .collect();
        let base = canonical_form(n, &facets, &colors, DEFAULT_BUDGET);
        prop_assert!(base.exact, "budget too small for n = 6");
        let sigma = &all_permutations(n)[perm_index % 720];
        let (rf, rc) = relabel(&facets, &colors, sigma);
        let relabeled = canonical_form(n, &rf, &rc, DEFAULT_BUDGET);
        prop_assert!(relabeled.exact);
        prop_assert_eq!(base.key(), relabeled.key());
    }

    /// Distinct color patterns are *not* conflated: recoloring a vertex
    /// to a fresh color changes the key (soundness side of the test
    /// above — the key must separate what relabeling cannot merge).
    #[test]
    fn canonical_key_separates_fresh_colors(
        raw_facets in prop::collection::vec(
            prop::collection::btree_set(0u32..5, 2..=4usize), 1..=4usize),
        colors in prop::collection::vec(0u32..2, 5),
        target in 0usize..5,
    ) {
        let n = 5usize;
        let facets: Vec<Vec<u32>> = raw_facets
            .into_iter()
            .map(|f| f.into_iter().collect())
            .collect();
        let base = canonical_form(n, &facets, &colors, DEFAULT_BUDGET);
        let mut recolored = colors.clone();
        recolored[target] = 99; // a color class of size one, nowhere else
        let changed = canonical_form(n, &facets, &recolored, DEFAULT_BUDGET);
        prop_assert!(base.exact && changed.exact);
        // the color multiset differs, so the keys cannot coincide
        prop_assert_ne!(base.key(), changed.key());
    }

    /// Orbit branching never flips a verdict: the full task pipeline
    /// (complex construction, symmetry certification, pruned solve)
    /// agrees with the unpruned solver on a randomized `n ≤ 3` grid.
    #[test]
    fn randomized_grid_verdicts_match_unpruned(
        model in 0usize..3,
        k in 1usize..=2,
        f in 1usize..=2,
        n_plus_1 in 2usize..=3,
        rounds in 1usize..=2,
    ) {
        let point = match model {
            0 => SweepPoint::Async { k, f, n_plus_1, rounds },
            1 => SweepPoint::Sync { k, f, n_plus_1, k_per_round: k.min(f), rounds },
            _ => SweepPoint::SemiSync {
                k, f, n_plus_1, k_per_round: k.min(f), microrounds: 2, rounds,
            },
        };
        let pruned = point.run_opts(SweepOptions { symmetry: true, ..SweepOptions::default() });
        let unpruned = point.run_opts(SweepOptions { symmetry: false, ..SweepOptions::default() });
        prop_assert_eq!(pruned, unpruned);
    }
}

/// Full `n ≤ 3` grids across all three models: symmetry on and off must
/// produce identical sweep tables through both the per-point and the
/// shared (canonically deduped) drivers.
#[test]
fn full_small_grid_symmetry_on_off_equal() {
    let mut points = Vec::new();
    for n_plus_1 in 2..=3usize {
        for f in 1..n_plus_1 {
            for k in 1..=2usize {
                for rounds in 1..=2usize {
                    let k_per_round = k.min(f);
                    points.push(SweepPoint::Async {
                        k,
                        f,
                        n_plus_1,
                        rounds,
                    });
                    points.push(SweepPoint::Sync {
                        k,
                        f,
                        n_plus_1,
                        k_per_round,
                        rounds,
                    });
                    points.push(SweepPoint::SemiSync {
                        k,
                        f,
                        n_plus_1,
                        k_per_round,
                        microrounds: 2,
                        rounds,
                    });
                }
            }
        }
    }
    let on = SweepOptions {
        symmetry: true,
        ..SweepOptions::default()
    };
    let off = SweepOptions {
        symmetry: false,
        ..SweepOptions::default()
    };
    assert_eq!(
        solvability_sweep_opts(&points, 2, on),
        solvability_sweep_opts(&points, 2, off),
        "per-point driver"
    );
    assert_eq!(
        solvability_sweep_shared_opts(&points, 2, on),
        solvability_sweep_shared_opts(&points, 2, off),
        "shared driver"
    );
}

/// A sync `n = 4` grid (the acceptance-criterion shape): identical
/// verdict tables with symmetry on and off through the shared sweep.
#[test]
fn sync_n4_grid_symmetry_on_off_equal() {
    let mut points = Vec::new();
    for k in 1..=2usize {
        for rounds in 1..=2usize {
            points.push(SweepPoint::Sync {
                k,
                f: 1,
                n_plus_1: 4,
                k_per_round: 1,
                rounds,
            });
        }
    }
    let on = solvability_sweep_shared_opts(
        &points,
        2,
        SweepOptions {
            symmetry: true,
            ..SweepOptions::default()
        },
    );
    let off = solvability_sweep_shared_opts(
        &points,
        2,
        SweepOptions {
            symmetry: false,
            ..SweepOptions::default()
        },
    );
    assert_eq!(on, off);
    // classical sanity: sync consensus with f = 1 needs 2 rounds
    assert!(!on[0].solvable && on[1].solvable);
}
