//! Regeneration of the paper's three figures (experiments E1–E3):
//! exact combinatorial invariants plus exporter output.

use pseudosphere::core::{process_simplex, Pseudosphere};
use pseudosphere::models::{input_simplex, SyncModel};
use pseudosphere::topology::export::{ascii_summary, to_dot, to_off};
use pseudosphere::topology::{ConnectivityAnalyzer, Homology};
use std::collections::BTreeSet;

fn set(vals: &[u8]) -> BTreeSet<u8> {
    vals.iter().copied().collect()
}

#[test]
fn figure1_three_process_binary_pseudosphere() {
    // "the result of assigning binary values to n + 1 processes is
    // topologically equivalent to an n-dimensional sphere"
    let ps = Pseudosphere::uniform(process_simplex(3), set(&[0, 1]));
    let c = ps.realize();
    // the octahedron: 6 vertices, 12 edges, 8 triangles
    assert_eq!(c.f_vector(), vec![6, 12, 8]);
    assert_eq!(c.euler_characteristic(), 2);
    let h = Homology::reduced(&c);
    assert_eq!(h.betti(0), 0);
    assert_eq!(h.betti(1), 0);
    assert_eq!(h.betti(2), 1);
    // intermediate stage of the construction (two copies labeled 0/1):
    // the two "poles" ψ with singleton families are disjoint facets
    let zero = Pseudosphere::uniform(process_simplex(3), set(&[0])).realize();
    let one = Pseudosphere::uniform(process_simplex(3), set(&[1])).realize();
    assert_eq!(zero.facet_count(), 1);
    assert_eq!(one.facet_count(), 1);
    assert!(zero.intersection(&one).is_void());
    assert!(c.contains(zero.facets().next().unwrap()));
    assert!(c.contains(one.facets().next().unwrap()));
}

#[test]
fn figure1_exporters() {
    let ps = Pseudosphere::uniform(process_simplex(3), set(&[0, 1]));
    let c = ps.realize();
    let dot = to_dot(&c, "figure1");
    assert_eq!(dot.matches(" -- ").count(), 12);
    assert_eq!(dot.matches("2-simplex").count(), 8);
    let off = to_off(&c);
    assert!(off.starts_with("OFF\n6 8 0"));
    let txt = ascii_summary(&c, "Figure 1: ψ(S²; {0,1})");
    assert!(txt.contains("f-vector = [6, 12, 8]"));
}

#[test]
fn figure2_psi_s1_binary_and_ternary() {
    // ψ(S¹; {0,1}): a 4-cycle (1-sphere)
    let binary = Pseudosphere::uniform(process_simplex(2), set(&[0, 1]));
    let cb = binary.realize();
    assert_eq!(cb.f_vector(), vec![4, 4]);
    let hb = Homology::reduced(&cb);
    assert_eq!(hb.betti(1), 1);

    // ψ(S¹; {0,1,2}): K_{3,3}, a wedge of 4 circles up to homotopy
    let ternary = Pseudosphere::uniform(process_simplex(2), set(&[0, 1, 2]));
    let ct = ternary.realize();
    assert_eq!(ct.f_vector(), vec![6, 9]);
    let ht = Homology::reduced(&ct);
    assert_eq!(ht.betti(1), 4);
    assert_eq!(ternary.wedge_size(), 4);
}

#[test]
fn figure3_one_round_sync_complex() {
    // left: failure-free execution (a single triangle);
    // middle: "R alone fails" (a 4-cycle pseudosphere);
    // right: the full union (triangle + three squares glued on edges).
    let model = SyncModel::new(3, 1, 1);
    let input = input_simplex(&[0u8, 1, 2]);

    let union = model.one_round_union(&input);
    assert_eq!(union.len(), 4);
    let members = union.members();
    assert_eq!(members[0].facet_count(), 1); // K = ∅
    for m in &members[1..] {
        assert_eq!(m.facet_count(), 4); // K = {P}, {Q}, {R}
        assert_eq!(m.dim(), 1);
    }

    let c = union.realize();
    assert_eq!(c.f_vector(), vec![9, 12, 1]);
    let an = ConnectivityAnalyzer::new(&c);
    assert_eq!(an.connectivity(), 0); // connected; three 1-holes remain
    assert_eq!(Homology::reduced(&c).betti(1), 3);

    let txt = ascii_summary(&c, "Figure 3: S¹(S²), one failure");
    assert!(txt.contains("facets (10)"));
}
