//! Semi-synchronous round solvability (the combinatorial side of §8):
//! the decision-map staircase for M^r mirrors the synchronous one —
//! as the paper's unification predicts, since the round structures share
//! the same union-of-pseudospheres shape.

use pseudosphere::agreement::semisync_solvable;

#[test]
fn semisync_consensus_round_staircase() {
    // 3 processes, f = 1, k = 1, p = 2 microrounds
    let r0 = semisync_solvable(1, 1, 3, 1, 2, 0);
    assert!(!r0.solvable, "{r0:?}");
    let r1 = semisync_solvable(1, 1, 3, 1, 2, 1);
    assert!(!r1.solvable, "{r1:?}");
    let r2 = semisync_solvable(1, 1, 3, 1, 2, 2);
    assert!(r2.solvable, "{r2:?}");
}

#[test]
fn semisync_matches_sync_staircase_for_p1() {
    // with a single microround the semi-synchronous round structure
    // degenerates to the synchronous one (μ ∈ {0, 1} = reached or not),
    // so solvability must match round for round.
    use pseudosphere::agreement::sync_solvable;
    for rounds in 0..=2usize {
        let ss = semisync_solvable(1, 1, 3, 1, 1, rounds);
        let sy = sync_solvable(1, 1, 3, 1, rounds);
        assert_eq!(
            ss.solvable, sy.solvable,
            "r = {rounds}: semisync {ss:?} vs sync {sy:?}"
        );
    }
}

#[test]
fn semisync_2set_one_round_suffices() {
    // k = 2, f = 1: one round is enough, as in the synchronous model
    let r1 = semisync_solvable(2, 1, 3, 1, 2, 1);
    assert!(r1.solvable, "{r1:?}");
    let r0 = semisync_solvable(2, 1, 3, 1, 2, 0);
    assert!(!r0.solvable, "{r0:?}");
}

#[test]
fn more_microrounds_do_not_rescue_one_round_consensus() {
    // finer microround structure gives the adversary *more* failure
    // patterns, never fewer: one round stays unsolvable as p grows
    for p in [1u32, 2, 3] {
        let r = semisync_solvable(1, 1, 3, 1, p, 1);
        assert!(!r.solvable, "p = {p}: {r:?}");
    }
}
