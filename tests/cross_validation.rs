//! Cross-validation: the discrete-event simulator's exhaustively
//! enumerated executions regenerate the combinatorial protocol complexes
//! of `ps-models` — Lemmas 11 and 14 (and their r-round iterations) made
//! executable from *both* sides.
//!
//! Experiments E3 and E7 of EXPERIMENTS.md.

use pseudosphere::core::process_set;
use pseudosphere::models::{input_simplex, AsyncModel, SyncModel};
use pseudosphere::runtime::{enumerate_async_views, enumerate_sync_views};
use pseudosphere::topology::are_isomorphic;

#[test]
fn async_one_round_simulator_matches_model() {
    // E7 / Lemma 11, n+1 = 3, f = 1
    let model = AsyncModel::new(3, 1);
    let input = input_simplex(&[0u8, 1, 2]);
    let from_model = model.one_round_complex(&input);
    let from_sim = enumerate_async_views(&[0, 1, 2], &process_set(3), 1, 1);
    assert_eq!(from_model.facet_count(), from_sim.facet_count());
    assert_eq!(from_model, from_sim); // identical labels, not just isomorphic
}

#[test]
fn async_one_round_simulator_matches_model_f2() {
    let model = AsyncModel::new(3, 2);
    let input = input_simplex(&[0u8, 1, 2]);
    let from_model = model.one_round_complex(&input);
    let from_sim = enumerate_async_views(&[0, 1, 2], &process_set(3), 2, 1);
    assert_eq!(from_model, from_sim);
}

#[test]
fn async_two_round_simulator_matches_model() {
    // r = 2 with 2 processes keeps the enumeration small
    let model = AsyncModel::new(2, 1);
    let input = input_simplex(&[0u8, 1]);
    let from_model = model.protocol_complex(&input, 2);
    let from_sim = enumerate_async_views(&[0, 1], &process_set(2), 1, 2);
    assert_eq!(from_model, from_sim);
}

#[test]
fn async_formula_pseudosphere_isomorphic_to_simulator() {
    // Lemma 11's ψ-formula vs the simulator (label types differ, so
    // isomorphism rather than equality)
    let model = AsyncModel::new(3, 1);
    let input = input_simplex(&[0u8, 1, 2]);
    let formula = model.one_round_pseudosphere(&input).realize();
    let from_sim = enumerate_async_views(&[0, 1, 2], &process_set(3), 1, 1);
    assert!(are_isomorphic(&formula, &from_sim));
}

#[test]
fn sync_one_round_simulator_matches_model() {
    // E3 / Lemma 14 + Figure 3, n+1 = 3, k = f = 1
    let model = SyncModel::new(3, 1, 1);
    let input = input_simplex(&[0u8, 1, 2]);
    let from_model = model.one_round_complex(&input);
    let from_sim = enumerate_sync_views(&[0, 1, 2], 1, 1, 1);
    assert_eq!(from_model, from_sim);
    assert_eq!(from_sim.f_vector(), vec![9, 12, 1]); // Figure 3 shape
}

#[test]
fn sync_one_round_simulator_matches_model_k2() {
    let model = SyncModel::new(3, 2, 2);
    let input = input_simplex(&[0u8, 1, 2]);
    let from_model = model.one_round_complex(&input);
    let from_sim = enumerate_sync_views(&[0, 1, 2], 2, 2, 1);
    assert_eq!(from_model, from_sim);
}

#[test]
fn sync_two_round_simulator_matches_model() {
    let model = SyncModel::new(3, 1, 1);
    let input = input_simplex(&[0u8, 1, 2]);
    let from_model = model.protocol_complex(&input, 2);
    let from_sim = enumerate_sync_views(&[0, 1, 2], 1, 1, 2);
    assert_eq!(from_model, from_sim);
}

#[test]
fn sync_two_round_budget_two() {
    // total budget 2, cap 1/round: failures can be split across rounds
    let model = SyncModel::new(3, 1, 2);
    let input = input_simplex(&[0u8, 1, 2]);
    let from_model = model.protocol_complex(&input, 2);
    let from_sim = enumerate_sync_views(&[0, 1, 2], 1, 2, 2);
    assert_eq!(from_model, from_sim);
}

#[test]
fn distinct_inputs_distinct_complexes() {
    // sanity: the construction depends on the inputs
    let a = enumerate_sync_views(&[0, 1, 2], 1, 1, 1);
    let b = enumerate_sync_views(&[0, 0, 0], 1, 1, 1);
    assert_ne!(a, b);
    assert_eq!(a.f_vector(), b.f_vector()); // same shape, different labels
}
