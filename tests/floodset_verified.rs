//! FloodSet's decision rule, verified *exhaustively* as a decision map:
//! over the synchronous task complex with an **unrestricted** per-round
//! adversary (per-round cap = f), the rule "decide the minimum known
//! input" is a valid k-set agreement decision map at `⌊f/k⌋ + 1` rounds.
//! This is the upper-bound half of Theorem 18, checked over *every*
//! execution of the instance rather than sampled runs.

use std::collections::BTreeSet;

use pseudosphere::agreement::{
    allowed_values, sync_task_complex, DecisionMapSolver, KSetAgreement,
};
use pseudosphere::models::View;
use pseudosphere::topology::Complex;

fn floodset_map(complex: &Complex<View<u64>>) -> std::collections::BTreeMap<View<u64>, u64> {
    complex
        .vertex_set()
        .into_iter()
        .map(|v| {
            let min = *v.known_inputs().values().min().expect("nonempty view");
            (v, min)
        })
        .collect()
}

fn check_floodset(k: usize, f: usize, n_plus_1: usize) {
    let task = KSetAgreement::canonical(k);
    let rounds = f / k + 1;
    // unrestricted adversary: up to f crashes in any single round
    let complex = sync_task_complex(&task, n_plus_1, f, f, rounds);
    let map = floodset_map(&complex);
    assert!(
        DecisionMapSolver::verify(&complex, &map, allowed_values, k),
        "FloodSet violated on k={k} f={f} n+1={n_plus_1} r={rounds}"
    );
}

#[test]
fn floodset_consensus_f1_three_processes() {
    check_floodset(1, 1, 3);
}

#[test]
fn floodset_consensus_f1_four_processes() {
    check_floodset(1, 1, 4);
}

#[test]
fn floodset_2set_f2_three_processes() {
    check_floodset(2, 2, 3);
}

#[test]
fn floodset_2set_f1_three_processes() {
    check_floodset(2, 1, 3);
}

#[test]
fn floodset_fails_one_round_short() {
    // at ⌊f/k⌋ rounds the same rule must violate agreement somewhere
    // (Theorem 18's lower bound seen through FloodSet's own rule).
    let task = KSetAgreement::canonical(1);
    let complex = sync_task_complex(&task, 3, 1, 1, 1); // r = 1 < 2
    let map = floodset_map(&complex);
    assert!(!DecisionMapSolver::verify(
        &complex,
        &map,
        allowed_values,
        1
    ));
}

#[test]
fn floodset_map_is_valid_by_construction() {
    // validity (decide a known input) holds for every vertex regardless
    // of round count
    let task = KSetAgreement::canonical(1);
    let complex = sync_task_complex(&task, 3, 1, 1, 1);
    let map = floodset_map(&complex);
    for (v, x) in &map {
        let dom: BTreeSet<u64> = allowed_values(v);
        assert!(dom.contains(x));
    }
}
