//! Machine-checked impossibility instances: Corollary 13 (asynchronous
//! k-set agreement, k ≤ f) and Theorem 18 (synchronous round lower
//! bound), via exhaustive decision-map search over the full task
//! complexes.
//!
//! Experiments E8 and E10 of EXPERIMENTS.md.

use pseudosphere::agreement::{async_solvable, sync_solvable};

#[test]
fn corollary13_async_consensus_impossible_r1_and_r2() {
    // k = 1 ≤ f = 1, n+1 = 3: no decision map at r = 1 or r = 2.
    let r1 = async_solvable(1, 1, 3, 1);
    assert!(!r1.solvable, "{r1:?}");
    let r2 = async_solvable(1, 1, 3, 2);
    assert!(!r2.solvable, "{r2:?}");
}

#[test]
fn corollary13_async_2set_two_failures_impossible() {
    // k = 2 ≤ f = 2, n+1 = 3: impossible at r = 1.
    let r = async_solvable(2, 2, 3, 1);
    assert!(!r.solvable, "{r:?}");
}

#[test]
fn corollary13_async_consensus_impossible_even_with_more_failures() {
    // k = 1 ≤ f = 2, n+1 = 3
    let r = async_solvable(1, 2, 3, 1);
    assert!(!r.solvable, "{r:?}");
}

#[test]
fn async_threshold_tight_k_above_f_solvable() {
    // k = f + 1: solvable (OwnValue would do it); the solver agrees.
    let r = async_solvable(2, 1, 3, 1);
    assert!(r.solvable, "{r:?}");
    let r2 = async_solvable(3, 2, 3, 1);
    assert!(r2.solvable, "{r2:?}");
}

#[test]
fn theorem18_consensus_three_processes() {
    // n+1 = 3, f = 1, k = 1: r = 1 impossible, r = 2 solvable
    // (FloodSet's ⌊f/k⌋ + 1 = 2 rounds are necessary and sufficient).
    let r0 = sync_solvable(1, 1, 3, 1, 0);
    assert!(!r0.solvable, "{r0:?}");
    let r1 = sync_solvable(1, 1, 3, 1, 1);
    assert!(!r1.solvable, "{r1:?}");
    let r2 = sync_solvable(1, 1, 3, 1, 2);
    assert!(r2.solvable, "{r2:?}");
}

#[test]
fn theorem18_consensus_four_processes_round_one_impossible() {
    // n+1 = 4, f = 1, k = 1 (n > f + k): Theorem 18's bound is
    // ⌊f/k⌋ + 1 = 2 rounds, so r = 1 must be unsolvable.
    let r1 = sync_solvable(1, 1, 4, 1, 1);
    assert!(!r1.solvable, "{r1:?}");
}

#[test]
fn theorem18_2set_agreement_one_round_suffices_with_one_failure() {
    // k = 2, f = 1: ⌊f/k⌋ + 1 = 1 round; r = 0 impossible, r = 1 solvable.
    let r0 = sync_solvable(2, 1, 3, 1, 0);
    assert!(!r0.solvable, "{r0:?}");
    let r1 = sync_solvable(2, 1, 3, 1, 1);
    assert!(r1.solvable, "{r1:?}");
}

#[test]
fn theorem18_2set_agreement_two_failures() {
    // k = 2, f = 2, n+1 = 4, per-round cap 2: bound ⌊2/2⌋ + 1 = 2 when
    // n > f + k (3 > 4 fails), so Theorem 18 only forces ⌊f/k⌋ = 1
    // round; check r = 0 impossible and record r = 1's status.
    let r0 = sync_solvable(2, 2, 4, 2, 0);
    assert!(!r0.solvable, "{r0:?}");
    let r1 = sync_solvable(2, 2, 4, 2, 1);
    // r = 1 is solvable here: with n ≤ f + k the weaker bound is tight.
    assert!(r1.solvable, "{r1:?}");
}

#[test]
fn input_complex_alone_never_solves() {
    // r = 0 (the bare input complex) cannot solve any nontrivial
    // instance: the input pseudosphere is (n-1)-connected.
    for (k, f, n_plus_1) in [(1usize, 1usize, 3usize), (2, 1, 3), (2, 2, 4)] {
        let r = sync_solvable(k, f, n_plus_1, f, 0);
        assert!(!r.solvable, "k={k} f={f} n+1={n_plus_1}");
    }
}
