//! Cross-crate determinism check for the worker-pool layer: the
//! parallel homology and sweep paths must be **byte-identical** to the
//! serial ones on the actual model complexes the experiment drivers
//! produce — not just on synthetic fixtures.
//!
//! The pool only distributes independent `(dimension, row-block)` jobs
//! and merges results by job index, so any divergence from the serial
//! path is a bug, not a tolerance. This is the equivalence test CI runs
//! under both `PS_THREADS=1` and the default thread count.

use std::collections::BTreeSet;

use pseudosphere::agreement::{solvability_sweep, solvability_sweep_shared, SweepPoint};
use pseudosphere::core::ProcessId;
use pseudosphere::models::{input_simplex, FailurePattern, SemiSyncModel, SyncModel};
use pseudosphere::topology::{parallel, ConnectivityAnalyzer, Homology};

const THREADS: [usize; 4] = [2, 3, 4, 16];

#[test]
fn sync_protocol_complex_homology_is_thread_invariant() {
    let complex = SyncModel::new(4, 1, 1).protocol_complex(&input_simplex(&[0u8, 1, 2, 3]), 2);
    let serial = Homology::reduced_with_threads(&complex, 1);
    let serial_b2 = Homology::betti_mod2_with_threads(&complex, 1);
    for t in THREADS {
        assert_eq!(
            Homology::reduced_with_threads(&complex, t),
            serial,
            "threads={t}"
        );
        assert_eq!(
            Homology::betti_mod2_with_threads(&complex, t),
            serial_b2,
            "threads={t}"
        );
    }
}

#[test]
fn semisync_complex_connectivity_is_thread_invariant() {
    let model = SemiSyncModel::new(3, 1, 1, 2);
    let complex = model.protocol_complex(&input_simplex(&[0u8, 1, 2]), 1);
    let serial = ConnectivityAnalyzer::with_threads(&complex, 1);
    let serial_m2 = ConnectivityAnalyzer::mod2_with_threads(&complex, 1);
    for t in THREADS {
        let par = ConnectivityAnalyzer::with_threads(&complex, t);
        assert_eq!(par.connectivity(), serial.connectivity(), "threads={t}");
        let par_m2 = ConnectivityAnalyzer::mod2_with_threads(&complex, t);
        assert_eq!(
            par_m2.connectivity(),
            serial_m2.connectivity(),
            "threads={t}"
        );
    }
}

#[test]
fn solver_sweep_is_thread_invariant() {
    let points = vec![
        SweepPoint::Async {
            k: 1,
            f: 1,
            n_plus_1: 2,
            rounds: 1,
        },
        SweepPoint::Sync {
            k: 1,
            f: 1,
            n_plus_1: 3,
            k_per_round: 1,
            rounds: 1,
        },
        SweepPoint::Sync {
            k: 2,
            f: 2,
            n_plus_1: 3,
            k_per_round: 2,
            rounds: 1,
        },
        SweepPoint::SemiSync {
            k: 1,
            f: 1,
            n_plus_1: 3,
            k_per_round: 1,
            microrounds: 2,
            rounds: 1,
        },
    ];
    let serial = solvability_sweep(&points, 1);
    for t in THREADS {
        assert_eq!(solvability_sweep(&points, t), serial, "threads={t}");
    }
}

/// The amortized sweep (one shared interned complex per `(model, n, f,
/// r)` group, every `k` solved against one prepared instance) must be
/// just as thread-invariant as the per-point sweep, and must reach the
/// same verdicts.
#[test]
fn shared_solver_sweep_is_thread_invariant() {
    let mut points = Vec::new();
    for k in 1..=2usize {
        points.push(SweepPoint::Async {
            k,
            f: 1,
            n_plus_1: 3,
            rounds: 1,
        });
        points.push(SweepPoint::Sync {
            k,
            f: 1,
            n_plus_1: 3,
            k_per_round: 1,
            rounds: 2,
        });
    }
    points.push(SweepPoint::SemiSync {
        k: 1,
        f: 1,
        n_plus_1: 2,
        k_per_round: 1,
        microrounds: 2,
        rounds: 1,
    });
    let serial = solvability_sweep_shared(&points, 1);
    for t in THREADS {
        assert_eq!(solvability_sweep_shared(&points, t), serial, "threads={t}");
    }
    // verdicts coincide with the per-point canonical path
    let canonical = solvability_sweep(&points, 1);
    for (i, (s, c)) in serial.iter().zip(&canonical).enumerate() {
        assert_eq!(s.solvable, c.solvable, "point {i}: {:?}", points[i]);
    }
}

/// The default entry points (`Homology::reduced`, `betti_mod2`) must
/// agree with the explicit serial path whatever `configured_threads()`
/// resolves to — this is what running the whole suite twice (with and
/// without `PS_THREADS=1`) exercises end to end.
#[test]
fn default_entry_points_match_serial() {
    let complex = SyncModel::new(3, 1, 1).protocol_complex(&input_simplex(&[0u8, 1, 2]), 1);
    assert_eq!(
        Homology::reduced(&complex),
        Homology::reduced_with_threads(&complex, 1)
    );
    assert_eq!(
        Homology::betti_mod2(&complex),
        Homology::betti_mod2_with_threads(&complex, 1)
    );
    // configured_threads itself honors the in-process override
    parallel::set_threads(Some(3));
    assert_eq!(parallel::configured_threads(), 3);
    parallel::set_threads(None);
}

/// Lemma 20 pseudosphere unions (failure-pattern-restricted complexes)
/// go through the same pipeline.
#[test]
fn failure_pattern_union_is_thread_invariant() {
    let model = SemiSyncModel::new(3, 1, 1, 2);
    let input = input_simplex(&[0u8, 1, 2]);
    let k_set: BTreeSet<ProcessId> = [ProcessId(2)].into_iter().collect();
    let pattern: FailurePattern = [(ProcessId(2), 1u32)].into_iter().collect();
    let complex = model.lemma20_rhs(&input, &k_set, &pattern).realize();
    let serial = Homology::reduced_with_threads(&complex, 1);
    for t in THREADS {
        assert_eq!(
            Homology::reduced_with_threads(&complex, t),
            serial,
            "threads={t}"
        );
    }
}
