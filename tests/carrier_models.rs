//! The protocol operators of §6–§8 really are carrier maps: monotone,
//! and strict where the paper's Mayer–Vietoris arguments need it.

use pseudosphere::core::ProcessId;
use pseudosphere::models::{input_simplex, AsyncModel, IisModel, SyncModel};
use pseudosphere::topology::{CarrierMap, Complex};

#[test]
fn async_one_round_is_a_monotone_carrier_map() {
    let model = AsyncModel::new(3, 2); // f = n: defined on all faces
    let input = input_simplex(&[0u8, 1, 2]);
    let phi = model.carrier_map(&input, 1);
    assert!(phi.is_monotone());
    assert!(phi.is_strict());
    assert_eq!(phi.total_image(), model.protocol_complex(&input, 1));
}

#[test]
fn async_with_threshold_is_still_monotone() {
    // f = 1: faces below the participation threshold map to void;
    // monotonicity still holds (void ⊆ anything).
    let model = AsyncModel::new(3, 1);
    let input = input_simplex(&[0u8, 1, 2]);
    let domain = Complex::simplex(input);
    let phi = CarrierMap::from_fn(&domain, |s| model.protocol_complex(s, 1));
    assert!(phi.is_monotone());
}

#[test]
fn sync_one_round_is_a_monotone_carrier_map() {
    // faces = initial crashes; budget shrinks accordingly
    let input = input_simplex(&[0u8, 1, 2]);
    let domain = Complex::simplex(input);
    let phi = CarrierMap::from_fn(&domain, |s| {
        let initial_crashes = 3 - s.len();
        if initial_crashes > 1 {
            return Complex::new();
        }
        let model = SyncModel::new(3, 1, 1 - initial_crashes);
        model.protocol_complex(s, 1)
    });
    assert!(phi.is_monotone());
}

#[test]
fn iis_one_round_is_a_monotone_carrier_map() {
    let model = IisModel::new();
    let input = input_simplex(&[0u8, 1, 2]);
    let domain = Complex::simplex(input);
    let phi = CarrierMap::from_fn(&domain, |s| model.protocol_complex(s, 1));
    assert!(phi.is_monotone());
    assert!(phi.is_strict());
}

#[test]
fn two_round_async_vertices_factor_through_one_round() {
    // the inductive definition: every A² vertex's embedded previous-round
    // state is an A¹ vertex (the carrier-map composition structure).
    let model = AsyncModel::new(2, 1);
    let input = input_simplex(&[0u8, 1]);
    let domain = Complex::simplex(input.clone());
    let phi1 = CarrierMap::from_fn(&domain, |s| model.protocol_complex(s, 1));
    let inner = phi1.total_image();
    let direct = model.protocol_complex(&input, 2);
    for f in direct.facets() {
        for v in f.vertices() {
            assert_eq!(v.round(), 2);
            let prev = v.heard_from(v.process()).unwrap();
            assert!(inner.vertex_set().contains(prev), "{prev:?}");
        }
    }
    let _ = ProcessId(0);
}
