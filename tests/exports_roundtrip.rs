//! Exporter round-trips and structural invariants across all model
//! complexes: text-format round-trips exactly; DOT/OFF/SVG carry the
//! right element counts.

use pseudosphere::models::{input_simplex, AsyncModel, IisModel, SemiSyncModel, SyncModel};
use pseudosphere::topology::export::{from_text, to_dot, to_off, to_text};
use pseudosphere::topology::svg::{to_svg, SvgOptions};
use pseudosphere::topology::{Complex, Label};

fn roundtrip<V: Label>(c: &Complex<V>, name: &str) {
    // text round-trip through index labels (always injective; the
    // compact Debug form of deep views is not)
    let verts: Vec<V> = c.vertex_set().into_iter().collect();
    let as_strings = c.map(|v| format!("v{}", verts.binary_search(v).unwrap()));
    assert_eq!(
        as_strings.vertex_count(),
        c.vertex_count(),
        "{name}: index labels must be injective"
    );
    let text = to_text(&as_strings);
    let back = from_text(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
    assert_eq!(back, as_strings, "{name}: text round-trip");

    // DOT: one edge line per 1-simplex
    let dot = to_dot(c, name);
    assert_eq!(
        dot.matches(" -- ").count(),
        c.simplices_of_dim(1).len(),
        "{name}: DOT edge count"
    );

    // OFF: header reflects vertex / triangle counts
    let off = to_off(c);
    let header = off.lines().nth(1).unwrap();
    let counts: Vec<usize> = header
        .split_whitespace()
        .map(|t| t.parse().unwrap())
        .collect();
    assert_eq!(counts[0], c.vertex_count(), "{name}: OFF vertices");
    assert_eq!(counts[1], c.simplices_of_dim(2).len(), "{name}: OFF faces");

    // SVG: one circle per vertex, one polygon per 2-simplex
    let svg = to_svg(c, name, &SvgOptions::default());
    assert_eq!(
        svg.matches("<circle").count(),
        c.vertex_count(),
        "{name}: SVG circles"
    );
    assert_eq!(
        svg.matches("<polygon").count(),
        c.simplices_of_dim(2).len(),
        "{name}: SVG polygons"
    );
}

#[test]
fn all_one_round_model_complexes_roundtrip() {
    let input = input_simplex(&[0u8, 1, 2]);
    roundtrip(&AsyncModel::new(3, 1).one_round_complex(&input), "async");
    roundtrip(&SyncModel::new(3, 1, 1).one_round_complex(&input), "sync");
    roundtrip(
        &SemiSyncModel::new(3, 1, 1, 2).one_round_complex(&input),
        "semisync",
    );
    roundtrip(&IisModel::new().one_round_complex(&input), "iis");
}

#[test]
fn two_round_async_roundtrips() {
    let input = input_simplex(&[0u8, 1]);
    roundtrip(
        &AsyncModel::new(2, 1).protocol_complex(&input, 2),
        "async-r2",
    );
}

#[test]
fn pseudosphere_realizations_roundtrip() {
    use pseudosphere::core::{process_simplex, Pseudosphere};
    for vals in 2..=3u8 {
        let ps = Pseudosphere::uniform(process_simplex(3), (0..vals).collect());
        roundtrip(&ps.realize(), &format!("psi-{vals}"));
    }
}
