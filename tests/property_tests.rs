//! Property-based tests (proptest) on the core invariants:
//! chain-complex identities, Euler/Betti consistency, pseudosphere
//! formulas vs. realizations, prover soundness, solver/verify agreement,
//! subdivision invariance, and isomorphism under relabeling.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;
use pseudosphere::agreement::DecisionMapSolver;
use pseudosphere::core::{process_simplex, MvProver, ProcessId, Pseudosphere, PseudosphereUnion};
use pseudosphere::topology::{
    are_isomorphic, barycentric_subdivision, is_shellable, nerve, ChainComplex, Complex,
    ConnectivityAnalyzer, Homology, Simplex,
};

/// A random small complex over vertices `0..max_vert`.
fn arb_complex(max_vert: u32, max_facets: usize) -> impl Strategy<Value = Complex<u32>> {
    prop::collection::vec(
        prop::collection::btree_set(0..max_vert, 1..=4usize),
        1..=max_facets,
    )
    .prop_map(|facets| Complex::from_facets(facets.into_iter().map(Simplex::from_iter)))
}

/// A random family assignment over `n` processes with values `0..3`.
fn arb_families(n: usize) -> impl Strategy<Value = BTreeMap<ProcessId, BTreeSet<u8>>> {
    prop::collection::vec(prop::collection::btree_set(0u8..3, 0..=3usize), n).prop_map(
        move |fams| {
            fams.into_iter()
                .enumerate()
                .map(|(i, f)| (ProcessId(i as u32), f))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn boundary_squared_is_zero(c in arb_complex(7, 6)) {
        let cc = ChainComplex::of(&c);
        prop_assert!(cc.verify_boundary_squared_zero());
    }

    #[test]
    fn euler_equals_alternating_betti(c in arb_complex(7, 6)) {
        // unreduced: χ = Σ (-1)^d b_d ; reduced homology shifts b_0 by 1
        let h = Homology::reduced(&c);
        let mut alt = 1i64; // the reduced b_0 is components - 1
        for d in 0..=c.dim() {
            let b = h.betti(d) as i64;
            alt += if d % 2 == 0 { b } else { -b };
        }
        prop_assert_eq!(alt, c.euler_characteristic());
    }

    #[test]
    fn mod2_betti_at_least_integral(c in arb_complex(6, 5)) {
        // universal coefficients: b_d(Z/2) ≥ b_d(Z)
        let h = Homology::reduced(&c);
        let b2 = Homology::betti_mod2(&c);
        for d in 0..=c.dim() {
            prop_assert!(b2[d as usize] >= h.betti(d));
        }
    }

    #[test]
    fn union_intersection_euler_inclusion_exclusion(
        a in arb_complex(6, 4),
        b in arb_complex(6, 4),
    ) {
        let u = a.union(&b);
        let i = a.intersection(&b);
        prop_assert_eq!(
            u.euler_characteristic() + i.euler_characteristic(),
            a.euler_characteristic() + b.euler_characteristic()
        );
    }

    #[test]
    fn skeleton_is_idempotent_and_monotone(c in arb_complex(7, 6), k in 0i32..4) {
        let sk = c.skeleton(k);
        prop_assert_eq!(sk.skeleton(k).clone(), sk.clone());
        prop_assert!(sk.dim() <= k);
        for f in sk.facets() {
            prop_assert!(c.contains(f));
        }
    }

    #[test]
    fn subdivision_preserves_euler_and_betti(c in arb_complex(6, 4)) {
        let sd = barycentric_subdivision(&c);
        prop_assert_eq!(sd.euler_characteristic(), c.euler_characteristic());
        let h = Homology::reduced(&c);
        let hs = Homology::reduced(&sd);
        for d in 0..=c.dim() {
            prop_assert_eq!(hs.betti(d), h.betti(d), "dim {}", d);
        }
    }

    #[test]
    fn relabeled_complexes_are_isomorphic(c in arb_complex(6, 5), offset in 10u32..50) {
        let d = c.map(|v| v + offset);
        prop_assert!(are_isomorphic(&c, &d));
    }

    #[test]
    fn pseudosphere_counts_match_realization(families in arb_families(3)) {
        let base = process_simplex(3);
        let ps = Pseudosphere::new(base, families).unwrap();
        let c = ps.realize();
        prop_assert_eq!(c.facet_count() as u128, ps.facet_count());
        prop_assert_eq!(c.vertex_count(), ps.vertex_count());
        prop_assert_eq!(c.dim(), ps.dim());
    }

    #[test]
    fn pseudosphere_wedge_size_is_top_betti(families in arb_families(3)) {
        let base = process_simplex(3);
        let ps = Pseudosphere::new(base, families).unwrap();
        prop_assume!(!ps.is_void());
        let h = Homology::reduced(&ps.realize());
        prop_assert_eq!(h.betti(ps.dim()) as u128, ps.wedge_size());
    }

    #[test]
    fn lemma4_intersection_symbolic_matches_explicit(
        fam_a in arb_families(3),
        fam_b in arb_families(3),
    ) {
        let base = process_simplex(3);
        let a = Pseudosphere::new(base.clone(), fam_a).unwrap();
        let b = Pseudosphere::new(base, fam_b).unwrap();
        let sym = a.intersect(&b).realize();
        let exp = a.realize().intersection(&b.realize());
        prop_assert_eq!(sym, exp);
    }

    #[test]
    fn pseudosphere_connectivity_formula_matches_homology(families in arb_families(3)) {
        let base = process_simplex(3);
        let ps = Pseudosphere::new(base, families).unwrap();
        let claimed = ps.connectivity();
        let an = ConnectivityAnalyzer::new(&ps.realize());
        if claimed == i32::MAX {
            prop_assert_eq!(an.connectivity(), i32::MAX);
        } else {
            prop_assert_eq!(an.connectivity(), claimed);
        }
    }

    #[test]
    fn prover_is_sound(
        fam_a in arb_families(3),
        fam_b in arb_families(3),
        k in -2i32..2,
    ) {
        let base = process_simplex(3);
        let union: PseudosphereUnion<ProcessId, u8> = [
            Pseudosphere::new(base.clone(), fam_a).unwrap(),
            Pseudosphere::new(base, fam_b).unwrap(),
        ].into_iter().collect();
        if MvProver::new().prove_k_connected(&union, k).is_ok() {
            let an = ConnectivityAnalyzer::new(&union.realize());
            prop_assert!(an.is_k_connected(k).is_yes(),
                "prover overclaimed {}-connectivity", k);
        }
    }

    #[test]
    fn solver_solutions_always_verify(c in arb_complex(6, 5), k in 1usize..3) {
        let allowed = |v: &u32| -> BTreeSet<u64> {
            [u64::from(*v % 2), 2].into_iter().collect()
        };
        let mut solver = DecisionMapSolver::new();
        if let Some(map) = solver.solve(&c, allowed, k) {
            prop_assert!(DecisionMapSolver::verify(&c, &map, allowed, k));
        } else {
            // exhaustive: with value 2 allowed everywhere, k >= 1 is
            // always solvable by the constant map — None must not happen
            prop_assert!(false, "constant map missed");
        }
    }

    #[test]
    fn solver_none_means_no_constant_works(c in arb_complex(5, 4)) {
        // with disjoint singleton domains per vertex parity and k = 1,
        // solvability coincides with no facet mixing parities
        let allowed = |v: &u32| -> BTreeSet<u64> { [u64::from(*v % 2)].into_iter().collect() };
        let mixing = c.facets().any(|f| {
            let parities: BTreeSet<u32> = f.vertices().iter().map(|v| v % 2).collect();
            parities.len() > 1
        });
        let mut solver = DecisionMapSolver::new();
        let solved = solver.solve(&c, allowed, 1).is_some();
        prop_assert_eq!(solved, !mixing);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shellable_pure_complexes_have_wedge_homology(families in arb_families(3)) {
        // pseudospheres are joins of discrete sets, hence shellable when
        // pure of dim ≥ 1; shelling implies reduced homology concentrated
        // in the top dimension.
        let base = process_simplex(3);
        let ps = Pseudosphere::new(base, families).unwrap();
        prop_assume!(!ps.is_void() && ps.dim() >= 1);
        let c = ps.realize();
        prop_assume!(c.facet_count() <= 12); // keep the shelling search fast
        prop_assert!(is_shellable(&c), "pseudosphere not shellable: {:?}", ps);
        let h = Homology::reduced(&c);
        for d in 0..ps.dim() {
            prop_assert_eq!(h.betti(d), 0, "nonzero H~{} on shellable complex", d);
        }
    }

    #[test]
    fn sparse_and_dense_boundary_ranks_agree(c in arb_complex(7, 6)) {
        let cc = ChainComplex::of(&c);
        for d in 0..=cc.dim() + 1 {
            prop_assert_eq!(
                cc.boundary_sparse(d).rank(),
                cc.boundary_bit(d).rank(),
                "dim {}", d
            );
        }
    }

    #[test]
    fn nerve_vertex_count_matches_live_members(
        a in arb_complex(5, 3),
        b in arb_complex(5, 3),
        c in arb_complex(5, 3),
    ) {
        let members = [a, b, c];
        let n = nerve(&members);
        let live = members.iter().filter(|m| !m.is_void()).count();
        prop_assert_eq!(n.vertex_count(), live);
        // nerve edges correspond exactly to pairwise nonempty intersections
        for i in 0..3usize {
            for j in (i + 1)..3 {
                if members[i].is_void() || members[j].is_void() {
                    continue;
                }
                let has_edge = n.contains(&Simplex::from_iter([i, j]));
                let intersects = !members[i].intersection(&members[j]).is_void();
                prop_assert_eq!(has_edge, intersects, "pair ({}, {})", i, j);
            }
        }
    }

    #[test]
    fn union_connectivity_never_below_mv_proof(
        fam_a in arb_families(2),
        fam_b in arb_families(2),
    ) {
        // smaller base: exhaustive k sweep with π₁ certificates
        let base = process_simplex(2);
        let union: PseudosphereUnion<ProcessId, u8> = [
            Pseudosphere::new(base.clone(), fam_a).unwrap(),
            Pseudosphere::new(base, fam_b).unwrap(),
        ].into_iter().collect();
        for k in -1..=1i32 {
            if MvProver::new().prove_k_connected(&union, k).is_ok() {
                let an = ConnectivityAnalyzer::new(&union.realize());
                prop_assert!(an.is_k_connected(k).is_yes());
            }
        }
    }
}
