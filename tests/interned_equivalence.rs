//! Property-based equivalence of the label-typed `Complex` façade and
//! the interned id path (`VertexPool` / `IdSimplex` / `IdComplex`).
//!
//! The interning layer promises *byte-identical* results: a canonical
//! pool assigns ids in ascending label order, so id-lexicographic
//! enumeration must coincide with label-lexicographic enumeration, and
//! every operation routed through ids must resolve back to exactly the
//! complex the label path produces.

use std::collections::BTreeSet;

use proptest::prelude::*;
use pseudosphere::topology::{
    ChainComplex, Complex, Homology, IdComplex, IdSimplex, InternedBuilder, Simplex, VertexPool,
};

/// A random small complex over vertices `0..max_vert`.
fn arb_complex(max_vert: u32, max_facets: usize) -> impl Strategy<Value = Complex<u32>> {
    prop::collection::vec(
        prop::collection::btree_set(0..max_vert, 1..=4usize),
        1..=max_facets,
    )
    .prop_map(|facets| Complex::from_facets(facets.into_iter().map(Simplex::from_iter)))
}

/// A random sorted id set, optionally shifted past 64 to force the
/// wider `IdSimplex` representations.
fn arb_ids(shift: u32) -> impl Strategy<Value = BTreeSet<u32>> {
    prop::collection::btree_set(0u32..80, 1..=6usize)
        .prop_map(move |s| s.into_iter().map(|x| x + shift).collect())
}

/// A random id set drawn across all three `IdSimplex` tiers: ids from
/// `0..160` hit the `Bits` (< 64), `Bits2` (< 128), and `Sorted`
/// (≥ 128) representations, and mixed sets cross both boundaries.
fn arb_tier_ids() -> impl Strategy<Value = BTreeSet<u32>> {
    prop::collection::btree_set(0u32..160, 0..=8usize)
}

/// Interns `c` into a caller-supplied pool (mirroring what the façade
/// does internally via a canonical pool).
fn intern_with(c: &Complex<u32>, pool: &mut VertexPool<u32>) -> IdComplex {
    let mut out = IdComplex::new();
    for f in c.facets() {
        out.add_simplex(pool.intern_simplex(f));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_identity_and_order_preserving(c in arb_complex(40, 8)) {
        let (pool, idc) = c.to_interned();
        prop_assert!(pool.is_canonical());
        let back = Complex::from_interned(&pool, &idc);
        prop_assert_eq!(&back, &c);
        // facet enumeration order is byte-identical, not just set-equal
        let orig: Vec<Simplex<u32>> = c.facets().cloned().collect();
        let rt: Vec<Simplex<u32>> = back.facets().cloned().collect();
        prop_assert_eq!(orig, rt);
    }

    #[test]
    fn cached_invariants_match_facade(c in arb_complex(40, 8)) {
        let (_, idc) = c.to_interned();
        prop_assert_eq!(idc.dim(), c.dim());
        prop_assert_eq!(idc.facet_count(), c.facet_count());
        prop_assert_eq!(idc.vertex_count(), c.vertex_set().len());
        prop_assert_eq!(idc.f_vector(), c.f_vector());
        prop_assert_eq!(idc.euler_characteristic(), c.euler_characteristic());
        prop_assert_eq!(idc.is_pure(), c.is_pure());
        prop_assert_eq!(idc.is_connected(), c.is_connected());
    }

    #[test]
    fn binary_ops_agree_under_shared_pool(a in arb_complex(30, 6), b in arb_complex(30, 6)) {
        // a shared (non-canonical) pool: ids reflect insertion order, yet
        // resolving each id-level op must still equal the label-level op
        let mut pool = VertexPool::new();
        let ia = intern_with(&a, &mut pool);
        let ib = intern_with(&b, &mut pool);
        prop_assert_eq!(
            Complex::from_interned(&pool, &ia.union(&ib)),
            a.union(&b)
        );
        prop_assert_eq!(
            Complex::from_interned(&pool, &ia.intersection(&ib)),
            a.intersection(&b)
        );
    }

    #[test]
    fn join_agrees_on_disjoint_shifted_copies(a in arb_complex(20, 4), b in arb_complex(20, 4)) {
        let b_shifted = b.map(|v| *v + 100);
        let mut pool = VertexPool::new();
        let ia = intern_with(&a, &mut pool);
        let ib = intern_with(&b_shifted, &mut pool);
        prop_assert_eq!(
            Complex::from_interned(&pool, &ia.join(&ib)),
            a.join(&b_shifted)
        );
    }

    #[test]
    fn skeleton_star_link_agree(c in arb_complex(30, 8), k in 0usize..3, v in 0u32..30) {
        let (pool, idc) = c.to_interned();
        prop_assert_eq!(
            Complex::from_interned(&pool, &idc.skeleton(k as i32)),
            c.skeleton(k as i32)
        );
        if let Some(id) = pool.id_of(&v) {
            let sv = IdSimplex::vertex(id);
            prop_assert_eq!(
                Complex::from_interned(&pool, &idc.star(&sv)),
                c.star(&Simplex::vertex(v))
            );
            prop_assert_eq!(
                Complex::from_interned(&pool, &idc.link(&sv)),
                c.link(&Simplex::vertex(v))
            );
        } else {
            prop_assert!(c.star(&Simplex::vertex(v)).is_void());
        }
    }

    #[test]
    fn closure_enumeration_agrees(c in arb_complex(30, 6)) {
        let (pool, idc) = c.to_interned();
        for d in -1..=c.dim() {
            let label: Vec<Simplex<u32>> = c.simplices_of_dim(d).into_iter().collect();
            let resolved: Vec<Simplex<u32>> = idc
                .simplices_of_dim(d)
                .iter()
                .map(|s| pool.resolve_simplex(s))
                .collect();
            prop_assert_eq!(label, resolved);
        }
    }

    #[test]
    fn id_simplex_tiers_agree_with_set_model(a in arb_tier_ids(), b in arb_tier_ids()) {
        // every set operation must agree with the generic BTreeSet path
        // regardless of which side of the 64/128 boundaries the ids land
        let ia = IdSimplex::from_ids(a.iter().copied().collect());
        let ib = IdSimplex::from_ids(b.iter().copied().collect());
        let mk = |s: &BTreeSet<u32>| IdSimplex::from_ids(s.iter().copied().collect());
        prop_assert_eq!(ia.len(), a.len());
        prop_assert_eq!(ia.is_empty(), a.is_empty());
        prop_assert_eq!(ia.ids().collect::<Vec<u32>>(), a.iter().copied().collect::<Vec<u32>>());
        prop_assert_eq!(ia.union(&ib), mk(&a.union(&b).copied().collect()));
        prop_assert_eq!(ia.intersection(&ib), mk(&a.intersection(&b).copied().collect()));
        prop_assert_eq!(ia.is_face_of(&ib), a.is_subset(&b));
        prop_assert_eq!(
            ia.cmp(&ib),
            a.iter().copied().collect::<Vec<u32>>().cmp(&b.iter().copied().collect::<Vec<u32>>())
        );
        for probe in [0u32, 63, 64, 127, 128, 159] {
            prop_assert_eq!(ia.contains(probe), a.contains(&probe));
            let mut without = a.clone();
            without.remove(&probe);
            prop_assert_eq!(ia.without(probe), mk(&without));
            let mut with = a.clone();
            with.insert(probe);
            prop_assert_eq!(ia.with(probe), mk(&with));
        }
        // the representation is canonical for the id range
        match a.iter().max() {
            None => prop_assert!(matches!(ia, IdSimplex::Bits(0))),
            Some(&m) if m < 64 => prop_assert!(matches!(ia, IdSimplex::Bits(_))),
            Some(&m) if m < 128 => prop_assert!(matches!(ia, IdSimplex::Bits2(_))),
            Some(_) => prop_assert!(matches!(ia, IdSimplex::Sorted(_))),
        }
    }

    #[test]
    fn id_simplex_order_mirrors_label_order(a in arb_ids(0), b in arb_ids(40)) {
        // 40-shift straddles the 64 boundary: mixes Bits and Bits2 reps
        let ia = IdSimplex::from_ids(a.iter().copied().collect());
        let ib = IdSimplex::from_ids(b.iter().copied().collect());
        let sa = Simplex::from_iter(a);
        let sb = Simplex::from_iter(b);
        prop_assert_eq!(ia.cmp(&ib), sa.cmp(&sb));
        prop_assert_eq!(ib.cmp(&ia), sb.cmp(&sa));
        prop_assert_eq!(ia.is_face_of(&ib), sa.is_face_of(&sb));
    }

    #[test]
    fn homology_unchanged_by_interning_roundtrip(c in arb_complex(8, 6)) {
        // ChainComplex::of internally runs on ids; its public basis must
        // stay the label-lex basis and Betti numbers must match a complex
        // rebuilt through an explicit roundtrip
        let cc = ChainComplex::of(&c);
        prop_assert!(cc.verify_boundary_squared_zero());
        let (pool, idc) = c.to_interned();
        let back = Complex::from_interned(&pool, &idc);
        let h1 = Homology::reduced(&c);
        let h2 = Homology::reduced(&back);
        for d in 0..=c.dim() {
            prop_assert_eq!(h1.betti(d), h2.betti(d));
        }
        for (d, dimension_basis) in cc.basis.iter().enumerate() {
            let expect: Vec<Simplex<u32>> =
                c.simplices_of_dim(d as i32).into_iter().collect();
            prop_assert_eq!(dimension_basis, &expect);
        }
    }

    #[test]
    fn builder_absorption_matches_add_simplex(facets in prop::collection::vec(
        prop::collection::btree_set(0u32..25, 1..=4usize), 1..=8usize)) {
        // checked builder inserts == label-path absorption, including when
        // later facets absorb earlier ones
        let mut builder = InternedBuilder::new();
        let mut label = Complex::new();
        for f in &facets {
            let s = Simplex::from_iter(f.iter().copied());
            builder.add_facet(&s);
            label.add_simplex(s);
        }
        prop_assert_eq!(builder.finish(), label);
    }
}
