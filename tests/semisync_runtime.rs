//! Semi-synchronous runtime ↔ model cross-validation (Lemma 19 from the
//! simulator side, experiment E11).
//!
//! For each failure set `K`, failure pattern `F`, and per-receiver choice
//! of whether each crashing process's final microround message is
//! delivered, the real-time executor is driven by the corresponding
//! `ScriptedPattern` adversary. Every survivor's resulting *view vector*
//! must lie in the paper's `[F]` box, and enumerating all delivery
//! choices must produce exactly the facets of the Lemma 19 pseudosphere
//! `ψ(Sⁿ\K; [F])`.

use std::collections::{BTreeMap, BTreeSet};

use pseudosphere::core::ProcessId;
use pseudosphere::models::{FailurePattern, SemiSyncModel};
use pseudosphere::runtime::{ScriptedPattern, TimedExecutor, TimedParams, TimedProtocol};

/// One-round full-information observer: broadcasts its microround number
/// at each of the first `p` steps, then at step `p` decides its view
/// vector (last microround heard per sender, self = `p`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct RoundObserver;

type ViewVec = Vec<(u32, u32)>; // (process index, last microround)

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct ObserverState {
    me: ProcessId,
    p: u64,
    heard: BTreeMap<ProcessId, u32>,
}

impl TimedProtocol for RoundObserver {
    type Input = u8;
    type State = ObserverState;
    type Msg = u32; // the microround of the send
    type Output = ViewVec;

    fn init(
        &self,
        me: ProcessId,
        _n_plus_1: usize,
        _input: u8,
        params: &TimedParams,
    ) -> ObserverState {
        ObserverState {
            me,
            p: params.microrounds(),
            heard: BTreeMap::new(),
        }
    }

    fn on_step(
        &self,
        mut state: ObserverState,
        _now: u64,
        step: u64,
        inbox: &[(ProcessId, u32)],
    ) -> (ObserverState, Option<u32>, Option<ViewVec>) {
        for (src, mu) in inbox {
            let e = state.heard.entry(*src).or_insert(0);
            *e = (*e).max(*mu);
        }
        let p = state.p;
        // steps 0..p are microrounds 1..=p; step p is the collection step
        let broadcast = (step < p).then_some(step as u32 + 1);
        let decide = (step == p).then(|| {
            let mut view: BTreeMap<ProcessId, u32> = state.heard.clone();
            view.insert(state.me, p as u32);
            view.into_iter().map(|(q, mu)| (q.0, mu)).collect()
        });
        (state, broadcast, decide)
    }
}

/// Enumerates all last-message delivery choices for the crashing set.
fn delivery_choices(
    k_set: &[ProcessId],
    survivors: &[ProcessId],
) -> Vec<BTreeSet<(ProcessId, ProcessId)>> {
    let pairs: Vec<(ProcessId, ProcessId)> = k_set
        .iter()
        .flat_map(|c| survivors.iter().map(move |s| (*c, *s)))
        .collect();
    (0u32..(1 << pairs.len()))
        .map(|mask| {
            pairs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, pr)| *pr)
                .collect()
        })
        .collect()
}

#[test]
fn executor_views_land_in_view_box() {
    // 3 processes, c1 = 2, d = 4 => p = 2 microrounds.
    let params = TimedParams::new(2, 4, 4);
    let model = SemiSyncModel::new(3, 1, 1, params.microrounds() as u32);
    let all: Vec<ProcessId> = (0..3u32).map(ProcessId).collect();

    for crasher in &all {
        let survivors: Vec<ProcessId> = all.iter().copied().filter(|q| q != crasher).collect();
        for fail_step in 1..=params.microrounds() {
            let pattern: FailurePattern = [(*crasher, fail_step as u32)].into_iter().collect();
            let participants: BTreeSet<ProcessId> = all.iter().copied().collect();
            let the_box = model.view_box(&participants, &pattern);

            let mut seen_vectors: BTreeSet<Vec<(u32, u32)>> = BTreeSet::new();
            for delivered in delivery_choices(&[*crasher], &survivors) {
                let adv_proto = ScriptedPattern::new(
                    [(*crasher, fail_step)].into_iter().collect(),
                    delivered,
                    &params,
                );
                let exec = TimedExecutor::new(RoundObserver, 3, params);
                let mut adv = adv_proto.clone();
                let trace = exec.run(&[0, 1, 2], &mut adv, 1000);
                for s in &survivors {
                    let (_, view) = trace.decision(*s).expect("survivor decides");
                    // convert to the models' ViewVector over participants
                    let as_map: BTreeMap<ProcessId, u32> = all
                        .iter()
                        .map(|q| {
                            let mu = view
                                .iter()
                                .find(|(i, _)| *i == q.0)
                                .map(|(_, mu)| *mu)
                                .unwrap_or(0);
                            (*q, mu)
                        })
                        .collect();
                    assert!(
                        the_box.contains(&as_map),
                        "crasher={crasher} F={fail_step} view {as_map:?} not in [F] = {the_box:?}"
                    );
                    seen_vectors.insert(view.clone());
                }
            }
            // every element of [F] is realized by some delivery choice
            assert_eq!(
                seen_vectors.len(),
                the_box.len(),
                "crasher={crasher} F={fail_step}: coverage of [F] incomplete"
            );
        }
    }
}

#[test]
fn failure_free_run_gives_all_p_vector() {
    let params = TimedParams::new(2, 4, 4);
    let exec = TimedExecutor::new(RoundObserver, 3, params);
    let mut adv = ScriptedPattern::new(BTreeMap::new(), BTreeSet::new(), &params);
    let trace = exec.run(&[0, 1, 2], &mut adv, 1000);
    let p = params.microrounds() as u32;
    for q in 0..3u32 {
        let (_, view) = trace.decision(ProcessId(q)).expect("decides");
        assert_eq!(view.len(), 3);
        assert!(view.iter().all(|(_, mu)| *mu == p), "{view:?}");
    }
}

#[test]
fn facets_match_lemma19_pseudosphere() {
    // Collect the survivor-view simplexes over all delivery choices for a
    // fixed (K, F); they must biject with the facets of ψ(Sⁿ\K; [F]).
    use pseudosphere::models::input_simplex;

    let params = TimedParams::new(2, 4, 4);
    let model = SemiSyncModel::new(3, 1, 1, params.microrounds() as u32);
    let crasher = ProcessId(2);
    let survivors = [ProcessId(0), ProcessId(1)];
    let fail_step = 2u64;
    let pattern: FailurePattern = [(crasher, fail_step as u32)].into_iter().collect();

    // facet vertices are (process, view) pairs, as in the pseudosphere
    let mut facets: BTreeSet<Vec<(ProcessId, ViewVec)>> = BTreeSet::new();
    for delivered in delivery_choices(&[crasher], &survivors) {
        let exec = TimedExecutor::new(RoundObserver, 3, params);
        let mut adv = ScriptedPattern::new(
            [(crasher, fail_step)].into_iter().collect(),
            delivered,
            &params,
        );
        let trace = exec.run(&[0, 1, 2], &mut adv, 1000);
        let facet: Vec<(ProcessId, ViewVec)> = survivors
            .iter()
            .map(|s| (*s, trace.decision(*s).unwrap().1.clone()))
            .collect();
        facets.insert(facet);
    }
    let ps = model.member_pseudosphere(
        &input_simplex(&[0u8, 1, 2]),
        &[crasher].into_iter().collect(),
        &pattern,
    );
    assert_eq!(facets.len() as u128, ps.facet_count());
}
