//! Theorems 5 and 7 instantiated with real model protocols (experiment
//! E6): the asynchronous one-round protocol (with its participation
//! threshold) satisfies the hypothesis with `c = n - f`, and the
//! conclusion — connectivity of the protocol applied to input
//! pseudospheres and their unions — holds.

use pseudosphere::core::theorems::{check_theorem5, check_theorem7};
use pseudosphere::core::{identity_protocol, process_simplex, ProcessId, Pseudosphere};
use pseudosphere::models::AsyncModel;
use pseudosphere::topology::{Complex, Simplex};
use std::collections::BTreeSet;

/// The asynchronous one-round protocol as a `SimplexProtocol`: input
/// simplexes are global states `(process, value)`; `P(σ)` is `A¹(σ)`.
fn async_one_round(
    model: AsyncModel,
) -> impl Fn(&Simplex<(ProcessId, u8)>) -> Complex<pseudosphere::models::View<u8>> {
    move |input| model.one_round_complex(input)
}

fn set(vals: &[u8]) -> BTreeSet<u8> {
    vals.iter().copied().collect()
}

#[test]
fn theorem5_identity_c0() {
    // identity protocol, c = 0: Corollary 6 instances
    let proto = identity_protocol::<(ProcessId, u8)>();
    for n in 2..=3usize {
        let ps = Pseudosphere::uniform(process_simplex(n), set(&[0, 1]));
        let check = check_theorem5(&proto, &ps, 0);
        assert!(
            check.hypothesis_holds && check.conclusion_holds,
            "n={n}: {check:?}"
        );
    }
}

#[test]
fn theorem5_async_one_round_f_equals_n() {
    // 3 processes, f = 2: A¹ is defined on every nonempty face, and
    // A¹(S^l) is (l - (n - f) - 1)-connected = (l - 1)-connected, i.e.
    // c = n - f = 0. Conclusion: A¹(ψ(S²; U)) is 1-connected.
    let model = AsyncModel::new(3, 2);
    let proto = async_one_round(model);
    let ps = Pseudosphere::uniform(process_simplex(3), set(&[0, 1]));
    let check = check_theorem5(&proto, &ps, 0);
    assert!(check.hypothesis_holds, "{check:?}");
    assert!(check.conclusion_holds, "{check:?}");
    assert_eq!(check.asserted_level, 1);
}

#[test]
fn theorem5_async_one_round_with_threshold() {
    // 3 processes, f = 1: A¹ is void below 2 participants, so the
    // hypothesis fails at c = 0 on 0-dimensional faces (void is not
    // (-1)-connected) — and indeed must be stated at c = n - f = 1.
    let model = AsyncModel::new(3, 1);
    let proto = async_one_round(model);
    let ps = Pseudosphere::uniform(process_simplex(3), set(&[0, 1]));
    let check_c0 = check_theorem5(&proto, &ps, 0);
    assert!(!check_c0.hypothesis_holds);
    assert!(check_c0.confirms()); // theorem not contradicted
    let check_c1 = check_theorem5(&proto, &ps, 1);
    assert!(check_c1.hypothesis_holds, "{check_c1:?}");
    assert!(check_c1.conclusion_holds, "{check_c1:?}");
    assert_eq!(check_c1.asserted_level, 0);
}

#[test]
fn theorem7_async_union_with_common_value() {
    // union of input pseudospheres with a common value, f = 2 (c = 0):
    // A¹(ψ(S²;{0,1}) ∪ ψ(S²;{0,2})) is 1-connected.
    let model = AsyncModel::new(3, 2);
    let proto = async_one_round(model);
    let base = process_simplex(3);
    let check = check_theorem7(&proto, &base, &[set(&[0, 1]), set(&[0, 2])], 0);
    assert!(check.hypothesis_holds, "{check:?}");
    assert!(check.conclusion_holds, "{check:?}");
    assert_eq!(check.asserted_level, 1);
}

#[test]
fn theorem7_rejects_disjoint_families() {
    let model = AsyncModel::new(3, 2);
    let proto = async_one_round(model);
    let base = process_simplex(3);
    let check = check_theorem7(&proto, &base, &[set(&[0]), set(&[1])], 0);
    assert!(!check.hypothesis_holds);
    assert!(check.confirms());
}

#[test]
fn theorem7_two_processes_three_members() {
    let model = AsyncModel::new(2, 1);
    let proto = async_one_round(model);
    let base = process_simplex(2);
    let check = check_theorem7(
        &proto,
        &base,
        &[set(&[0, 1]), set(&[0, 2]), set(&[0, 1, 2])],
        0,
    );
    assert!(check.hypothesis_holds, "{check:?}");
    assert!(check.conclusion_holds, "{check:?}");
    assert_eq!(check.asserted_level, 0);
}

#[test]
fn theorem5_iis_subdivision_at_c0() {
    // the IIS one-round operator is a subdivision: contractible on every
    // face (hypothesis at c = 0 holds a fortiori), and its image of a
    // pseudosphere is homotopy equivalent to the pseudosphere — exactly
    // (m-1)-connected, matching Theorem 5's conclusion at c = 0.
    use pseudosphere::models::IisModel;
    let iis = IisModel::new();
    let proto = move |input: &Simplex<(ProcessId, u8)>| iis.protocol_complex(input, 1);
    let ps = Pseudosphere::uniform(process_simplex(2), set(&[0, 1]));
    let check = check_theorem5(&proto, &ps, 0);
    assert!(check.hypothesis_holds, "{check:?}");
    assert!(check.conclusion_holds, "{check:?}");
    assert_eq!(check.asserted_level, 0);
}
