//! Property tests for the timed executor's event accounting.
//!
//! Over random `RandomTimedAdversary` schedules (random step intervals,
//! message delays, and crash patterns) every execution must satisfy:
//!
//! 1. `events()` is chronological (non-decreasing timestamps),
//! 2. message delivery is FIFO per channel — each receiver hears every
//!    sender's step numbers in strictly increasing order,
//! 3. `messages_delivered()` equals the number of `Deliver` events.

use std::collections::BTreeMap;

use proptest::prelude::*;
use pseudosphere::core::ProcessId;
use pseudosphere::runtime::{
    RandomTimedAdversary, TimedEvent, TimedExecutor, TimedParams, TimedProtocol,
};

/// Each process broadcasts its step number on every step and decides on
/// its accumulated `(sender, step)` log once it has taken `decide_step`
/// steps. The log order is exactly the delivery order at that process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct StepEcho {
    decide_step: u64,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct EchoState {
    log: Vec<(u32, u64)>,
}

impl TimedProtocol for StepEcho {
    type Input = u8;
    type State = EchoState;
    type Msg = u64;
    type Output = Vec<(u32, u64)>;

    fn init(&self, _me: ProcessId, _n: usize, _input: u8, _p: &TimedParams) -> EchoState {
        EchoState { log: Vec::new() }
    }

    fn on_step(
        &self,
        mut state: EchoState,
        _now: u64,
        step: u64,
        inbox: &[(ProcessId, u64)],
    ) -> (EchoState, Option<u64>, Option<Vec<(u32, u64)>>) {
        state.log.extend(inbox.iter().map(|(p, m)| (p.0, *m)));
        let decide = (step + 1 >= self.decide_step).then(|| state.log.clone());
        (state, Some(step), decide)
    }
}

/// FIFO per channel: because sender `s` broadcasts strictly increasing
/// step numbers, receiver logs restricted to `s` must be strictly
/// increasing.
fn assert_fifo_per_channel(log: &[(u32, u64)]) {
    let mut last: BTreeMap<u32, u64> = BTreeMap::new();
    for &(src, step) in log {
        if let Some(prev) = last.get(&src) {
            assert!(
                step > *prev,
                "channel from P{src} reordered: step {step} after {prev} in {log:?}"
            );
        }
        last.insert(src, step);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_schedules_keep_accounting_invariants(
        seed in 0u64..10_000,
        n in 2usize..5,
        c2 in 1u64..4,
        d in 1u64..6,
        crash_bits in 0u32..8,
        crash_at in 1u64..20,
    ) {
        // crash a subset of processes (never all: keep at least P0 alive)
        let crashes: BTreeMap<ProcessId, u64> = (1..n as u32)
            .filter(|i| crash_bits & (1 << i) != 0)
            .map(|i| (ProcessId(i), crash_at + i as u64))
            .collect();

        let params = TimedParams::new(1, c2, d);
        let exec = TimedExecutor::new(StepEcho { decide_step: 6 }, n, params);
        let mut adv = RandomTimedAdversary::new(seed, crashes.clone());
        let inputs = vec![0u8; n];
        let trace = exec.run(&inputs, &mut adv, 200);

        // 1. chronological event log
        for w in trace.events().windows(2) {
            prop_assert!(
                w[0].time() <= w[1].time(),
                "events out of order: {:?} then {:?}",
                w[0],
                w[1]
            );
        }

        // 2. FIFO per channel, at every process that decided
        for p in 0..n as u32 {
            if let Some((_, log)) = trace.decision(ProcessId(p)) {
                assert_fifo_per_channel(log);
            }
        }
        // non-crashed processes must decide (steps are bounded, horizon ample)
        for p in 0..n as u32 {
            if !crashes.contains_key(&ProcessId(p)) {
                prop_assert!(
                    trace.decision(ProcessId(p)).is_some(),
                    "P{p} failed to decide"
                );
            }
        }

        // 3. the delivered counter matches the logged Deliver events
        let deliver_events = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TimedEvent::Deliver(_, _, _)))
            .count();
        prop_assert_eq!(trace.messages_delivered(), deliver_events as u64);
    }
}
