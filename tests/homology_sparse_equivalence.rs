//! Differential tests for the sparse GF(2) homology engine: on random
//! small complexes the word-block column reduction
//! ([`Homology::betti_mod2`]) must agree byte-for-byte with the dense
//! [`BitMatrix`]-elimination oracle ([`Homology::betti_mod2_dense`])
//! and with the Euler characteristic; [`PreparedBoundary`]'s lazy
//! connectivity queries must agree with both the dense oracle and
//! [`ConnectivityAnalyzer::mod2`]; and the shared-complex connectivity
//! sweep must reproduce the verdicts of independent dense
//! recomputation. CI runs this under `PS_THREADS=1` and the default
//! thread count (tier-1 runs the suite twice).

use proptest::prelude::*;
use pseudosphere::agreement::{
    connectivity_sweep_shared, sync_task_complex, KSetAgreement, SweepPoint,
};
use pseudosphere::topology::{Complex, ConnectivityAnalyzer, Homology, PreparedBoundary, Simplex};

/// A random small complex over vertices `0..max_vert` (same strategy as
/// tests/property_tests.rs and the `psph homology corpus` LCG stream).
fn arb_complex(max_vert: u32, max_facets: usize) -> impl Strategy<Value = Complex<u32>> {
    prop::collection::vec(
        prop::collection::btree_set(0..max_vert, 1..=4usize),
        1..=max_facets,
    )
    .prop_map(|facets| Complex::from_facets(facets.into_iter().map(Simplex::from_iter)))
}

/// Homological connectivity recomputed from the dense oracle's Betti
/// vector: `-2` for void, else one less than the first non-vanishing
/// reduced dimension (`i32::MAX` when everything vanishes).
fn dense_connectivity(c: &Complex<u32>) -> i32 {
    let b = Homology::betti_mod2_dense(c);
    if b.is_empty() {
        return -2;
    }
    match b.iter().position(|&x| x != 0) {
        Some(d) => d as i32 - 1,
        None => i32::MAX,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_betti_matches_dense_oracle(c in arb_complex(8, 8)) {
        let sparse = Homology::betti_mod2(&c);
        let dense = Homology::betti_mod2_dense(&c);
        prop_assert_eq!(&sparse, &dense);
        // reduced homology: χ = 1 + Σ_d (−1)^d b̃_d
        let mut alt = 1i64;
        for (d, &b) in sparse.iter().enumerate() {
            alt += if d % 2 == 0 { b as i64 } else { -(b as i64) };
        }
        prop_assert_eq!(alt, c.euler_characteristic());
    }

    #[test]
    fn prepared_connectivity_matches_dense_and_analyzer(c in arb_complex(8, 8)) {
        let expected = dense_connectivity(&c);
        let mut pb = PreparedBoundary::of_complex(&c);
        prop_assert_eq!(pb.homological_connectivity(), expected);
        let an = ConnectivityAnalyzer::mod2(&c);
        prop_assert_eq!(an.homological_connectivity(), expected);
        // is_q_connected must be the prefix-vanishing predicate of the
        // dense Betti vector at every level.
        let dense = Homology::betti_mod2_dense(&c);
        for q in -1..=c.dim() {
            let want = dense.iter().take((q + 1) as usize).all(|&b| b == 0);
            prop_assert_eq!(pb.is_q_connected(q), want, "q = {}", q);
        }
    }

    #[test]
    fn sparse_betti_is_thread_invariant(c in arb_complex(8, 8)) {
        let serial = Homology::betti_mod2_with_threads(&c, 1);
        for t in [2usize, 3, 16] {
            prop_assert_eq!(Homology::betti_mod2_with_threads(&c, t), serial.clone(), "threads = {}", t);
        }
    }
}

/// The grouped connectivity sweep must reproduce, point for point, the
/// verdict of independently rebuilding each group's complex (value
/// domain `{0..=k_max}` of the group) and asking the dense oracle —
/// and must be thread-invariant.
#[test]
fn connectivity_sweep_matches_independent_dense_verdicts() {
    let mut points = Vec::new();
    for rounds in 1..=2usize {
        for k in 1..=2usize {
            points.push(SweepPoint::Sync {
                k,
                f: 1,
                n_plus_1: 3,
                k_per_round: 1,
                rounds,
            });
        }
    }
    let results = connectivity_sweep_shared(&points, 1);
    assert_eq!(results.len(), points.len());
    for t in [2usize, 4] {
        assert_eq!(
            connectivity_sweep_shared(&points, t),
            results,
            "threads = {t}"
        );
    }

    // Both k = 1 and k = 2 live in one group per rounds value, so the
    // group's value domain is {0, 1, 2} — rebuild with exactly that.
    let task = KSetAgreement::canonical(2);
    for (p, r) in points.iter().zip(&results) {
        let SweepPoint::Sync { k, rounds, .. } = *p else {
            unreachable!()
        };
        let c = sync_task_complex(&task, 3, 1, 1, rounds);
        assert_eq!(r.q, k as i32 - 1);
        assert_eq!(r.vertices, c.vertex_count());
        assert_eq!(r.facets, c.facet_count());
        let dense = Homology::betti_mod2_dense(&c);
        let want = dense.iter().take(k).all(|&b| b == 0);
        assert_eq!(r.connected, want, "point {p:?}");
    }
}

/// Repeated queries against one shared [`PreparedBoundary`] (the sweep
/// cache pattern: connectivity first, full Betti vector afterwards)
/// must not change any answer relative to a cold engine.
#[test]
fn warm_cache_answers_match_cold_engine() {
    let task = KSetAgreement::canonical(2);
    let c = sync_task_complex(&task, 4, 2, 2, 1);
    let cold_betti = Homology::betti_mod2(&c);

    let mut pb = PreparedBoundary::of_complex(&c);
    let conn = pb.homological_connectivity(); // partial, bottom-up
    let warm_betti = pb.betti_mod2(); // completes on the warm cache
    assert_eq!(warm_betti, cold_betti);
    assert_eq!(
        conn,
        match cold_betti.iter().position(|&b| b != 0) {
            Some(d) => d as i32 - 1,
            None => i32::MAX,
        }
    );
    // and the counters only ever grow — a re-query does no new work
    let columns = pb.assembled_columns();
    let additions = pb.stats().additions;
    assert_eq!(pb.betti_mod2(), warm_betti);
    assert_eq!(pb.assembled_columns(), columns);
    assert_eq!(pb.stats().additions, additions);
}
