//! Legacy-facade vs. unified-scheduler trace equivalence.
//!
//! Each executor's `run` is now a facade over `ps-runtime::sched`; the
//! pre-unification event loops are retained as `run_legacy` oracles.
//! This differential suite pins byte-identical output (compared through
//! `Eq` on the full trace structs, which covers event order, decision
//! and crash maps, histories, and accounting counters) across:
//!
//! * **synchronous** — the *complete* adversary tree for n = 3, f = 1,
//!   r ≤ 2 (every crash set and recipient subset per round), plus
//!   seeded `RandomAdversary` runs;
//! * **semi-synchronous** — every `ScriptedPattern` delivery choice for
//!   the Lemma 19 set-up, `Lockstep`, `StretchAdversary`, and seeded
//!   `RandomTimedAdversary` runs (including crash schedules and tight
//!   horizons);
//! * **asynchronous** — every heard-set plan for n = 3, f = 1, r = 1,
//!   `Alternating`-style backlog schedules on the buffered executor,
//!   and seeded `RandomAsyncAdversary` runs.

use std::collections::{BTreeMap, BTreeSet};

use pseudosphere::core::{process_set, subsets_of_min_size, subsets_up_to_size_lex, ProcessId};
use pseudosphere::runtime::{
    AsyncAdversary, AsyncExecutor, BufferedAsyncExecutor, FullDelivery, FullInformation, HeardSets,
    Lockstep, RandomAdversary, RandomAsyncAdversary, RandomTimedAdversary, RoundFailures,
    ScriptedAdversary, ScriptedPattern, StretchAdversary, SyncExecutor, TimedExecutor, TimedParams,
    TimedProtocol,
};

// ---------------------------------------------------------------------------
// synchronous
// ---------------------------------------------------------------------------

/// The cartesian product of the per-slot choice lists.
fn cartesian<T: Clone>(choices: &[Vec<T>]) -> Vec<Vec<T>> {
    let mut out = vec![Vec::new()];
    for slot in choices {
        out = out
            .into_iter()
            .flat_map(|prefix| {
                slot.iter().map(move |c| {
                    let mut next = prefix.clone();
                    next.push(c.clone());
                    next
                })
            })
            .collect();
    }
    out
}

/// Enumerates every consistent adversary script for `n` processes with
/// total budget `f` over `rounds` rounds: each round a crash set among
/// the then-alive processes (within the remaining budget) and every
/// recipient subset of that round's survivors per crasher.
fn all_sync_scripts(n: u32, f: usize, rounds: usize) -> Vec<Vec<RoundFailures>> {
    fn rec(
        alive: &BTreeSet<ProcessId>,
        budget: usize,
        rounds_left: usize,
        prefix: Vec<RoundFailures>,
        out: &mut Vec<Vec<RoundFailures>>,
    ) {
        if rounds_left == 0 {
            out.push(prefix);
            return;
        }
        for crash_set in subsets_up_to_size_lex(alive, budget) {
            let survivors: BTreeSet<ProcessId> = alive.difference(&crash_set).copied().collect();
            let crashing: Vec<ProcessId> = crash_set.iter().copied().collect();
            let per_crasher: Vec<Vec<BTreeSet<ProcessId>>> = crashing
                .iter()
                .map(|_| subsets_up_to_size_lex(&survivors, survivors.len()))
                .collect();
            for recips in cartesian(&per_crasher) {
                let plan = RoundFailures {
                    crashes: crashing.iter().copied().zip(recips).collect(),
                };
                let mut next = prefix.clone();
                next.push(plan);
                if survivors.is_empty() {
                    // the run halts this round; no deeper branches exist
                    out.push(next);
                } else {
                    rec(
                        &survivors,
                        budget - crash_set.len(),
                        rounds_left - 1,
                        next,
                        out,
                    );
                }
            }
        }
    }
    let alive: BTreeSet<ProcessId> = (0..n).map(ProcessId).collect();
    let mut out = Vec::new();
    rec(&alive, f, rounds, Vec::new(), &mut out);
    out
}

#[test]
fn sync_exhaustive_small_n_equivalence() {
    // n = 3, f = 1, r ≤ 2: the full adversary tree.
    for rounds in 1..=2usize {
        let scripts = all_sync_scripts(3, 1, rounds);
        assert!(
            scripts.len() >= 13,
            "expected a non-trivial script set, got {}",
            scripts.len()
        );
        for script in scripts {
            let exec = SyncExecutor::new(FullInformation::new(), 3, 1);
            let mut a1 = ScriptedAdversary {
                script: script.clone(),
            };
            let mut a2 = ScriptedAdversary { script };
            let unified = exec.run(&[0, 1, 2], &mut a1, rounds);
            let legacy = exec.run_legacy(&[0, 1, 2], &mut a2, rounds);
            assert_eq!(unified, legacy);
        }
    }
}

#[test]
fn sync_seeded_random_equivalence() {
    for seed in 0..50u64 {
        let exec = SyncExecutor::new(FullInformation::new(), 4, 2);
        let unified = exec.run(&[0, 1, 2, 3], &mut RandomAdversary::new(seed, 1, 0.7), 3);
        let legacy = exec.run_legacy(&[0, 1, 2, 3], &mut RandomAdversary::new(seed, 1, 0.7), 3);
        assert_eq!(unified, legacy, "seed {seed}");
    }
}

#[test]
fn sync_zero_rounds_equivalence() {
    let exec = SyncExecutor::new(FullInformation::new(), 3, 1);
    let unified = exec.run(&[0, 1, 2], &mut ScriptedAdversary::default(), 0);
    let legacy = exec.run_legacy(&[0, 1, 2], &mut ScriptedAdversary::default(), 0);
    assert_eq!(unified, legacy);
}

// ---------------------------------------------------------------------------
// semi-synchronous
// ---------------------------------------------------------------------------

/// The `RoundObserver` used by `tests/semisync_runtime.rs`, reduced:
/// broadcast the microround at each of the first `p` steps, decide the
/// heard map at step `p`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Observer;

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct ObserverState {
    p: u64,
    heard: Vec<(u32, u32)>,
}

impl TimedProtocol for Observer {
    type Input = u8;
    type State = ObserverState;
    type Msg = u32;
    type Output = Vec<(u32, u32)>;

    fn init(&self, _me: ProcessId, _n: usize, _input: u8, params: &TimedParams) -> ObserverState {
        ObserverState {
            p: params.microrounds(),
            heard: Vec::new(),
        }
    }

    fn on_step(
        &self,
        mut state: ObserverState,
        _now: u64,
        step: u64,
        inbox: &[(ProcessId, u32)],
    ) -> (ObserverState, Option<u32>, Option<Vec<(u32, u32)>>) {
        state.heard.extend(inbox.iter().map(|(q, mu)| (q.0, *mu)));
        let p = state.p;
        let broadcast = (step < p).then_some(step as u32 + 1);
        let decide = (step == p).then(|| state.heard.clone());
        (state, broadcast, decide)
    }
}

#[test]
fn semisync_scripted_pattern_equivalence() {
    // every delivery choice of one crasher's final broadcast, for every
    // crasher and failure step — the Lemma 19 enumeration.
    let params = TimedParams::new(2, 4, 4);
    let all: Vec<ProcessId> = (0..3u32).map(ProcessId).collect();
    for crasher in &all {
        let survivors: Vec<ProcessId> = all.iter().copied().filter(|q| q != crasher).collect();
        for fail_step in 1..=params.microrounds() {
            for mask in 0u32..(1 << survivors.len()) {
                let delivered: BTreeSet<(ProcessId, ProcessId)> = survivors
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, s)| (*crasher, *s))
                    .collect();
                let adv = ScriptedPattern::new(
                    [(*crasher, fail_step)].into_iter().collect(),
                    delivered,
                    &params,
                );
                let exec = TimedExecutor::new(Observer, 3, params);
                let unified = exec.run(&[0, 1, 2], &mut adv.clone(), 1000);
                let legacy = exec.run_legacy(&[0, 1, 2], &mut adv.clone(), 1000);
                assert_eq!(unified, legacy, "crasher={crasher} F={fail_step} m={mask}");
            }
        }
    }
}

#[test]
fn semisync_lockstep_and_stretch_equivalence() {
    for (c1, c2, d) in [(1u64, 1u64, 1u64), (1, 2, 4), (2, 6, 8), (3, 3, 8)] {
        let params = TimedParams::new(c1, c2, d);
        let exec = TimedExecutor::new(Observer, 3, params);
        assert_eq!(
            exec.run(&[0, 1, 2], &mut Lockstep, 500),
            exec.run_legacy(&[0, 1, 2], &mut Lockstep, 500),
        );
        for crash_at in [0u64, 1, 5] {
            let mut a1 = StretchAdversary {
                survivor: ProcessId(0),
                crash_at,
            };
            let mut a2 = a1;
            assert_eq!(
                exec.run(&[0, 1, 2], &mut a1, 500),
                exec.run_legacy(&[0, 1, 2], &mut a2, 500),
            );
        }
    }
}

#[test]
fn semisync_seeded_random_equivalence() {
    for seed in 0..60u64 {
        // vary crash schedules and horizon tightness with the seed
        let crashes: BTreeMap<ProcessId, u64> = match seed % 4 {
            0 => BTreeMap::new(),
            1 => [(ProcessId(1), 3 + seed % 7)].into_iter().collect(),
            2 => [(ProcessId(0), 2), (ProcessId(2), 9)].into_iter().collect(),
            _ => [(ProcessId(3), 1 + seed % 5)].into_iter().collect(),
        };
        let params = TimedParams::new(1, 1 + seed % 3, 1 + seed % 5);
        let horizon = 20 + seed % 50;
        let exec = TimedExecutor::new(Observer, 4, params);
        let unified = exec.run(
            &[0; 4],
            &mut RandomTimedAdversary::new(seed, crashes.clone()),
            horizon,
        );
        let legacy = exec.run_legacy(
            &[0; 4],
            &mut RandomTimedAdversary::new(seed, crashes),
            horizon,
        );
        assert_eq!(unified, legacy, "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// asynchronous
// ---------------------------------------------------------------------------

/// A fixed one-round heard-set plan as an adversary.
#[derive(Clone, Debug)]
struct FixedPlan(HeardSets);

impl AsyncAdversary for FixedPlan {
    fn plan_round(&mut self, _: usize, _: &BTreeSet<ProcessId>, _: usize) -> HeardSets {
        self.0.clone()
    }
}

/// Backlog-building adversary (odd rounds: hear a fixed pair; even
/// rounds: hear everyone), as in the buffered executor's tests.
struct Alternating;

impl AsyncAdversary for Alternating {
    fn plan_round(
        &mut self,
        round: usize,
        participants: &BTreeSet<ProcessId>,
        _min_heard: usize,
    ) -> HeardSets {
        participants
            .iter()
            .map(|p| {
                let heard: BTreeSet<ProcessId> = if round % 2 == 1 {
                    let mut h: BTreeSet<ProcessId> = participants.iter().copied().take(2).collect();
                    h.insert(*p);
                    h
                } else {
                    participants.clone()
                };
                (*p, heard)
            })
            .collect()
    }
}

/// Every one-round heard-set plan for the participants (each heard set
/// contains self and has ≥ `min_heard` members).
fn all_async_plans(participants: &BTreeSet<ProcessId>, min_heard: usize) -> Vec<HeardSets> {
    let procs: Vec<ProcessId> = participants.iter().copied().collect();
    let choices: Vec<Vec<BTreeSet<ProcessId>>> = procs
        .iter()
        .map(|p| {
            let others: BTreeSet<ProcessId> =
                participants.iter().copied().filter(|q| q != p).collect();
            subsets_of_min_size(&others, min_heard.saturating_sub(1))
                .into_iter()
                .map(|mut m| {
                    m.insert(*p);
                    m
                })
                .collect()
        })
        .collect();
    let mut idx = vec![0usize; procs.len()];
    let mut out = Vec::new();
    'combos: loop {
        out.push(
            procs
                .iter()
                .enumerate()
                .map(|(i, p)| (*p, choices[i][idx[i]].clone()))
                .collect(),
        );
        let mut i = 0;
        loop {
            if i == procs.len() {
                break 'combos;
            }
            idx[i] += 1;
            if idx[i] < choices[i].len() {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
    }
    out
}

#[test]
fn async_exhaustive_one_round_equivalence() {
    let parts = process_set(3);
    let plans = all_async_plans(&parts, 2);
    assert_eq!(plans.len(), 27, "3 heard-set choices per process");
    for plan in plans {
        let exec = AsyncExecutor::new(FullInformation::new(), 3, 1);
        let unified = exec.run(&[0, 1, 2], &parts, &mut FixedPlan(plan.clone()), 1);
        let legacy = exec.run_legacy(&[0, 1, 2], &parts, &mut FixedPlan(plan), 1);
        assert_eq!(unified, legacy);
    }
}

#[test]
fn async_seeded_random_equivalence() {
    let parts = process_set(4);
    for seed in 0..50u64 {
        let exec = AsyncExecutor::new(FullInformation::new(), 4, 1);
        let unified = exec.run(&[0; 4], &parts, &mut RandomAsyncAdversary::new(seed), 2);
        let legacy = exec.run_legacy(&[0; 4], &parts, &mut RandomAsyncAdversary::new(seed), 2);
        assert_eq!(unified, legacy, "seed {seed}");
    }
}

#[test]
fn buffered_backlog_equivalence() {
    let parts = process_set(3);
    for rounds in 0..=5usize {
        let exec = BufferedAsyncExecutor::new(FullInformation::new(), 3, 1);
        let unified = exec.run(&[0, 1, 2], &parts, &mut Alternating, rounds);
        let legacy = exec.run_legacy(&[0, 1, 2], &parts, &mut Alternating, rounds);
        assert_eq!(unified, legacy, "rounds {rounds}");
    }
    // full delivery and seeded random schedules
    let exec = BufferedAsyncExecutor::new(FullInformation::new(), 3, 1);
    assert_eq!(
        exec.run(&[0, 1, 2], &parts, &mut FullDelivery, 3),
        exec.run_legacy(&[0, 1, 2], &parts, &mut FullDelivery, 3),
    );
    for seed in 0..30u64 {
        let unified = exec.run(&[0, 1, 2], &parts, &mut RandomAsyncAdversary::new(seed), 3);
        let legacy = exec.run_legacy(&[0, 1, 2], &parts, &mut RandomAsyncAdversary::new(seed), 3);
        assert_eq!(unified, legacy, "seed {seed}");
    }
}
