//! The §1 similarity-chain argument on real protocol complexes: extract
//! an explicit indistinguishability chain from the all-0 execution to
//! the all-1 execution of one-round synchronous consensus — the concrete
//! witness for why one round cannot solve consensus.

use pseudosphere::agreement::{allowed_values, sync_task_complex, KSetAgreement};
use pseudosphere::core::ProcessId;
use pseudosphere::models::View;
use pseudosphere::topology::{indistinguishability_chain, FacetGraph, Simplex};
use std::collections::BTreeSet;

/// The failure-free one-round facet for the given inputs.
fn failure_free_facet(inputs: [u64; 3]) -> Simplex<View<u64>> {
    let input_views: Vec<View<u64>> = inputs
        .iter()
        .enumerate()
        .map(|(i, v)| View::Input {
            process: ProcessId(i as u32),
            input: *v,
        })
        .collect();
    Simplex::new(
        (0..3u32)
            .map(|p| View::Round {
                process: ProcessId(p),
                heard: input_views
                    .iter()
                    .map(|v| (v.process(), v.clone()))
                    .collect(),
            })
            .collect(),
    )
}

#[test]
fn chain_from_all_zero_to_all_one() {
    let task = KSetAgreement::canonical(1);
    let complex = sync_task_complex(&task, 3, 1, 1, 1);
    let zero = failure_free_facet([0, 0, 0]);
    let one = failure_free_facet([1, 1, 1]);
    assert!(complex.contains(&zero));
    assert!(complex.contains(&one));

    // degree-1 similarity (one common local state) suffices for the
    // consensus argument; the chain exists because S¹ is connected
    let chain = indistinguishability_chain(&complex, &zero, &one, 1)
        .expect("S¹ over the input complex is connected");
    assert!(!chain.is_empty());
    // every link's pivot is a nonempty set of shared local states
    for link in &chain {
        assert!(!link.pivot.is_empty());
        assert!(!link.from.intersection(&link.to).is_empty());
    }
    // the endpoints force decisions 0 and 1 respectively (validity),
    // and along the chain some process always keeps its view — the
    // classical contradiction. Check validity forces the endpoints:
    let zero_vals: BTreeSet<u64> = zero.vertices().iter().flat_map(allowed_values).collect();
    assert_eq!(zero_vals, [0u64].into_iter().collect());
    let one_vals: BTreeSet<u64> = one.vertices().iter().flat_map(allowed_values).collect();
    assert_eq!(one_vals, [1u64].into_iter().collect());
}

#[test]
fn facet_graph_connectivity_mirrors_complex_connectivity() {
    let task = KSetAgreement::canonical(1);
    let complex = sync_task_complex(&task, 3, 1, 1, 1);
    let graph = FacetGraph::new(&complex, 1);
    assert_eq!(graph.component_count(), 1);
    assert!(complex.is_connected());
}

#[test]
fn two_rounds_break_the_chain() {
    // the connectivity/solvability duality, seen concretely: after
    // ⌊f/k⌋ + 1 = 2 rounds the protocol complex *disconnects* (the
    // all-0 and all-1 executions are no longer chained), and that is
    // precisely when the solver finds a decision map — decide per
    // component.
    let task = KSetAgreement::canonical(1);
    let complex = sync_task_complex(&task, 3, 1, 1, 2);
    let graph = FacetGraph::new(&complex, 1);
    assert!(
        graph.component_count() > 1,
        "2-round consensus complex should disconnect"
    );
    // in particular there is no chain between the monochromatic runs
    let zero2 = two_round_failure_free([0, 0, 0]);
    let one2 = two_round_failure_free([1, 1, 1]);
    assert!(complex.contains(&zero2));
    assert!(complex.contains(&one2));
    assert!(indistinguishability_chain(&complex, &zero2, &one2, 1).is_none());
}

/// The failure-free two-round facet for the given inputs.
fn two_round_failure_free(inputs: [u64; 3]) -> Simplex<View<u64>> {
    let round1 = failure_free_facet(inputs);
    Simplex::new(
        (0..3u32)
            .map(|p| View::Round {
                process: ProcessId(p),
                heard: round1
                    .vertices()
                    .iter()
                    .map(|v| (v.process(), v.clone()))
                    .collect(),
            })
            .collect(),
    )
}
