//! Exhaustive protocol verification: FloodSet and EarlyFloodSet run
//! through *every* §7-structured adversary behavior of small instances.
//! A passing sweep is an instance-level correctness proof (termination,
//! validity, agreement), complementing the decision-map experiments.

use std::collections::BTreeSet;

use pseudosphere::agreement::{EarlyFloodSet, FloodSet};
use pseudosphere::runtime::for_each_sync_execution;

#[test]
fn floodset_consensus_correct_on_every_execution() {
    // n+1 = 3, f = 1, k = 1, rounds = 2 (= ⌊f/k⌋ + 1)
    let proto = FloodSet::optimal(1, 1);
    let inputs = [2u64, 0, 1];
    let input_set: BTreeSet<u64> = inputs.iter().copied().collect();
    let mut count = 0usize;
    for_each_sync_execution(&proto, &inputs, 1, 1, 2, &mut |t| {
        count += 1;
        assert!(t.satisfies_termination(3), "{:?}", t.decisions());
        assert!(t.satisfies_k_agreement(1), "{:?}", t.decisions());
        assert!(t.satisfies_validity(&input_set));
    });
    // round 1 has 13 branches (∅ + 3 crashers × 4 recipient subsets);
    // a crash exhausts the budget, so only the failure-free branch
    // re-branches in round 2: 12 + 13 = 25 executions.
    assert_eq!(count, 25);
}

#[test]
fn floodset_2set_correct_on_every_execution() {
    // n+1 = 3, f = 2, k = 2, rounds = 2; unrestricted per-round cap
    let proto = FloodSet::optimal(2, 2);
    let inputs = [2u64, 0, 1];
    let input_set: BTreeSet<u64> = inputs.iter().copied().collect();
    for_each_sync_execution(&proto, &inputs, 2, 2, 2, &mut |t| {
        assert!(t.satisfies_termination(3), "{:?}", t.decisions());
        assert!(t.satisfies_k_agreement(2), "{:?}", t.decisions());
        assert!(t.satisfies_validity(&input_set));
    });
}

#[test]
fn floodset_one_round_short_fails_somewhere() {
    // sanity for the harness: at ⌊f/k⌋ rounds a violation must exist
    let proto = FloodSet::new(1);
    let inputs = [2u64, 0, 1];
    let mut violations = 0usize;
    for_each_sync_execution(&proto, &inputs, 1, 1, 1, &mut |t| {
        if !t.satisfies_k_agreement(1) {
            violations += 1;
        }
    });
    assert!(violations > 0);
}

#[test]
fn early_floodset_correct_on_every_execution() {
    // the early decider with its relay round, f = 1: up to 3 rounds
    let proto = EarlyFloodSet::for_failures(1);
    let inputs = [2u64, 0, 1];
    let input_set: BTreeSet<u64> = inputs.iter().copied().collect();
    for_each_sync_execution(&proto, &inputs, 1, 1, 3, &mut |t| {
        assert!(t.satisfies_k_agreement(1), "{:?}", t.decisions());
        assert!(t.satisfies_validity(&input_set));
        // every survivor decides within f + 2 = 3 rounds
        assert!(t.satisfies_termination(3), "{:?}", t.decisions());
    });
}

#[test]
fn early_floodset_f2_correct_on_every_execution() {
    let proto = EarlyFloodSet::for_failures(2);
    let inputs = [2u64, 0, 1];
    let mut max_round_seen = 0usize;
    for_each_sync_execution(&proto, &inputs, 2, 2, 4, &mut |t| {
        assert!(t.satisfies_k_agreement(1), "{:?}", t.decisions());
        for (r, _) in t.decisions().values() {
            max_round_seen = max_round_seen.max(*r);
        }
    });
    // f' + 2 bound: with ≤ 2 crashes, decisions happen by round 4
    assert!(max_round_seen <= 4, "max decision round {max_round_seen}");
}

#[test]
fn early_beats_plain_floodset_in_failure_light_runs() {
    // quantify the early-stopping advantage: count executions where all
    // deciders finish before the f + 1 fallback
    let proto = EarlyFloodSet::for_failures(2);
    let inputs = [2u64, 0, 1];
    let mut early_count = 0usize;
    let mut total = 0usize;
    for_each_sync_execution(&proto, &inputs, 2, 2, 4, &mut |t| {
        total += 1;
        if !t.decisions().is_empty() && t.decisions().values().all(|(r, _)| *r < 3) {
            early_count += 1;
        }
    });
    assert!(early_count > 0, "{early_count}/{total}");
}
