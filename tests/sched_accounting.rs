//! Policy-generic property tests for the unified scheduler.
//!
//! The semisync accounting invariants (`tests/semisync_accounting.rs`)
//! ported to *all three* timing policies, driven through
//! [`run_policy`] directly rather than the `TimedExecutor` facade.
//! Over random adversary schedules, every execution under every policy
//! must satisfy:
//!
//! 1. the event log is chronological (non-decreasing timestamps),
//! 2. message delivery is FIFO per channel — each receiver hears every
//!    sender's step numbers in strictly increasing order,
//! 3. `messages_delivered()` equals the number of `Deliver` events,
//! 4. surviving processes decide within an ample horizon.

use std::collections::BTreeMap;

use proptest::prelude::*;
use pseudosphere::core::ProcessId;
use pseudosphere::runtime::{
    run_policy, AsyncPolicy, PolicyRun, RandomTimedAdversary, SemisyncPolicy, SyncPolicy,
    TimedEvent, TimedParams, TimedProtocol, TimedTrace, TimingPolicy,
};

/// Each process broadcasts its step number on every step and decides on
/// its accumulated `(sender, step)` log once it has taken `decide_step`
/// steps. The log order is exactly the delivery order at that process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct StepEcho {
    decide_step: u64,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct EchoState {
    log: Vec<(u32, u64)>,
}

impl TimedProtocol for StepEcho {
    type Input = u8;
    type State = EchoState;
    type Msg = u64;
    type Output = Vec<(u32, u64)>;

    fn init(&self, _me: ProcessId, _n: usize, _input: u8, _p: &TimedParams) -> EchoState {
        EchoState { log: Vec::new() }
    }

    fn on_step(
        &self,
        mut state: EchoState,
        _now: u64,
        step: u64,
        inbox: &[(ProcessId, u64)],
    ) -> (EchoState, Option<u64>, Option<Vec<(u32, u64)>>) {
        state.log.extend(inbox.iter().map(|(p, m)| (p.0, *m)));
        let decide = (step + 1 >= self.decide_step).then(|| state.log.clone());
        (state, Some(step), decide)
    }
}

/// FIFO per channel: because sender `s` broadcasts strictly increasing
/// step numbers, receiver logs restricted to `s` must be strictly
/// increasing.
fn assert_fifo_per_channel(log: &[(u32, u64)]) {
    let mut last: BTreeMap<u32, u64> = BTreeMap::new();
    for &(src, step) in log {
        if let Some(prev) = last.get(&src) {
            assert!(
                step > *prev,
                "channel from P{src} reordered: step {step} after {prev} in {log:?}"
            );
        }
        last.insert(src, step);
    }
}

/// Runs `StepEcho` under the given policy and checks the shared
/// invariants; returns an error message on the first violation.
fn check_invariants(
    trace: &TimedTrace<Vec<(u32, u64)>>,
    n: usize,
    crashes: &BTreeMap<ProcessId, u64>,
    policy_name: &str,
) -> Result<(), String> {
    // 1. chronological event log
    for w in trace.events().windows(2) {
        if w[0].time() > w[1].time() {
            return Err(format!(
                "[{policy_name}] events out of order: {:?} then {:?}",
                w[0], w[1]
            ));
        }
    }

    // 2. FIFO per channel, at every process that decided
    for p in 0..n as u32 {
        if let Some((_, log)) = trace.decision(ProcessId(p)) {
            assert_fifo_per_channel(log);
        }
    }
    // non-crashed processes must decide (steps are bounded, horizon ample)
    for p in 0..n as u32 {
        if !crashes.contains_key(&ProcessId(p)) && trace.decision(ProcessId(p)).is_none() {
            return Err(format!("[{policy_name}] P{p} failed to decide"));
        }
    }

    // 3. the delivered counter matches the logged Deliver events
    let deliver_events = trace
        .events()
        .iter()
        .filter(|e| matches!(e, TimedEvent::Deliver(_, _, _)))
        .count() as u64;
    if trace.messages_delivered() != deliver_events {
        return Err(format!(
            "[{policy_name}] delivered counter {} != {} Deliver events",
            trace.messages_delivered(),
            deliver_events
        ));
    }
    Ok(())
}

fn run_and_check(
    policy: &mut dyn TimingPolicy,
    n: usize,
    crashes: &BTreeMap<ProcessId, u64>,
    horizon: u64,
) -> Result<(), String> {
    let name = policy.name().to_owned();
    let proto = StepEcho { decide_step: 6 };
    let inputs = vec![0u8; n];
    let run = PolicyRun {
        max_time: horizon,
        ..PolicyRun::default()
    };
    let trace = run_policy(&proto, n, &inputs, policy, run);
    check_invariants(&trace, n, crashes, &name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The three policies over one shared random-adversary family.
    #[test]
    fn all_policies_keep_accounting_invariants(
        seed in 0u64..10_000,
        n in 2usize..5,
        c2 in 1u64..4,
        d in 1u64..6,
        crash_bits in 0u32..8,
        crash_at in 1u64..20,
    ) {
        // crash a subset of processes (never all: keep at least P0 alive)
        let crashes: BTreeMap<ProcessId, u64> = (1..n as u32)
            .filter(|i| crash_bits & (1 << i) != 0)
            .map(|i| (ProcessId(i), crash_at + i as u64))
            .collect();
        let params = TimedParams::new(1, c2, d);

        // synchronous: the adversary's timing draws are ignored (lockstep
        // rounds), only crash times and delivery verdicts matter.
        {
            let mut adv = RandomTimedAdversary::new(seed, crashes.clone());
            let mut policy = SyncPolicy::new(&mut adv);
            if let Err(e) = run_and_check(&mut policy, n, &crashes, 200) {
                return Err(TestCaseError::fail(e));
            }
        }

        // semi-synchronous: intervals in [c1, c2], delays in [0, d].
        {
            let mut adv = RandomTimedAdversary::new(seed, crashes.clone());
            let mut policy = SemisyncPolicy::new(&mut adv, params);
            if let Err(e) = run_and_check(&mut policy, n, &crashes, 200) {
                return Err(TestCaseError::fail(e));
            }
        }

        // asynchronous: same draws, but delays are uncapped by the
        // policy contract — the invariants must hold regardless.
        {
            let mut adv = RandomTimedAdversary::new(seed, crashes.clone());
            let mut policy = AsyncPolicy::new(&mut adv, params);
            if let Err(e) = run_and_check(&mut policy, n, &crashes, 400) {
                return Err(TestCaseError::fail(e));
            }
        }
    }
}

/// Under `SyncPolicy` every process steps at every tick, so a run with
/// no crashes delivers exactly `n·(n−1)` messages per completed round.
#[test]
fn sync_policy_round_delivery_count() {
    let n = 4usize;
    let proto = StepEcho { decide_step: 3 };
    let inputs = vec![0u8; n];
    let mut adv = RandomTimedAdversary::new(7, BTreeMap::new());
    let mut policy = SyncPolicy::new(&mut adv);
    let run = PolicyRun {
        max_time: 100,
        ..PolicyRun::default()
    };
    let trace = run_policy(&proto, n, &inputs, &mut policy, run);
    // steps at ticks 1, 2, 3; broadcasts from ticks 1 and 2 are
    // delivered at ticks 2 and 3 (the tick-3 sends are still in flight
    // when everyone decides).
    assert_eq!(trace.messages_delivered(), 2 * (n * (n - 1)) as u64);
    for p in 0..n as u32 {
        assert!(trace.decision(ProcessId(p)).is_some());
    }
}

/// An adversary pinned to the extreme end of the time axis: message
/// delays (and optionally step intervals) within `slack` of `u64::MAX`.
/// Event-time arithmetic must saturate rather than overflow — before
/// the policies saturated, `now + delay` panicked under debug overflow
/// checks as soon as `now > slack`.
#[derive(Clone, Copy, Debug)]
struct NearMaxAdversary {
    interval: u64,
    delay_slack: u64,
}

impl pseudosphere::runtime::TimedAdversary for NearMaxAdversary {
    fn step_interval(&mut self, _p: ProcessId, _step: u64, _params: &TimedParams) -> u64 {
        self.interval
    }
    fn message_delay(
        &mut self,
        _src: ProcessId,
        _dst: ProcessId,
        _send_time: u64,
        _params: &TimedParams,
    ) -> u64 {
        u64::MAX - self.delay_slack
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Near-`u64::MAX` message delays saturate instead of overflowing:
    /// the runs complete, logs stay chronological, and the in-flight
    /// messages (scheduled at ~`u64::MAX`, far past the horizon) are
    /// simply never delivered.
    #[test]
    fn near_max_delays_saturate(
        n in 2usize..5,
        interval in 1u64..4,
        delay_slack in 0u64..64,
    ) {
        let proto = StepEcho { decide_step: 4 };
        let inputs = vec![0u8; n];
        let no_crashes = BTreeMap::new();
        // d = u64::MAX admits the near-MAX delays under the semisync
        // window assertions; c2 bounds the chosen step interval.
        let params = TimedParams::new(1, interval, u64::MAX);

        for policy_kind in 0..2 {
            let mut adv = NearMaxAdversary { interval, delay_slack };
            let run = PolicyRun { max_time: 100, ..PolicyRun::default() };
            let trace = match policy_kind {
                0 => {
                    let mut policy = SemisyncPolicy::new(&mut adv, params);
                    run_policy(&proto, n, &inputs, &mut policy, run)
                }
                _ => {
                    let mut policy = AsyncPolicy::new(&mut adv, params);
                    run_policy(&proto, n, &inputs, &mut policy, run)
                }
            };
            prop_assert_eq!(trace.messages_delivered(), 0);
            check_invariants(&trace, n, &no_crashes, "near-max")
                .map_err(TestCaseError::fail)?;
        }

        // the retained legacy event loop must saturate identically
        let mut adv = NearMaxAdversary { interval, delay_slack };
        let exec = pseudosphere::runtime::TimedExecutor::new(proto, n, params);
        let legacy = exec.run_legacy(&inputs, &mut adv, 100);
        prop_assert_eq!(legacy.messages_delivered(), 0);
        check_invariants(&legacy, n, &no_crashes, "near-max-legacy")
            .map_err(TestCaseError::fail)?;
    }
}

/// Near-`u64::MAX` *step intervals* saturate too: after its first step
/// every process's next step lands at the saturated horizon, so the run
/// stops at `max_time` with one step each — and no overflow panic.
#[test]
fn near_max_step_intervals_saturate() {
    let n = 3usize;
    let proto = StepEcho { decide_step: 9 };
    let inputs = vec![0u8; n];
    let params = TimedParams::new(1, u64::MAX, u64::MAX);
    let mut adv = NearMaxAdversary {
        interval: u64::MAX - 1,
        delay_slack: 3,
    };
    let mut policy = SemisyncPolicy::new(&mut adv, params);
    let run = PolicyRun {
        max_time: 1_000,
        ..PolicyRun::default()
    };
    let trace = run_policy(&proto, n, &inputs, &mut policy, run);
    for w in trace.events().windows(2) {
        assert!(w[0].time() <= w[1].time(), "events out of order");
    }
    // nobody reaches decide_step: the second step of every process
    // saturates past the horizon
    for p in 0..n as u32 {
        assert!(trace.decision(ProcessId(p)).is_none());
    }
}
