//! The Mayer–Vietoris prover against ground-truth homology, across all
//! three models' one-round unions — the paper's connectivity lemmas
//! (12, 16, 21) checked by two independent methods.
//!
//! Experiments E5, E9, E11 of EXPERIMENTS.md.

use pseudosphere::core::{MvProver, PseudosphereUnion};
use pseudosphere::models::{input_simplex, AsyncModel, SemiSyncModel, SyncModel};
use pseudosphere::topology::ConnectivityAnalyzer;

#[test]
fn async_lemma12_one_round_sweep() {
    // A¹(Sⁿ) is a single pseudosphere; claimed (n-(n-f)-1)-connectivity
    for (n_plus_1, f) in [(3usize, 1usize), (3, 2), (4, 1), (4, 2)] {
        let model = AsyncModel::new(n_plus_1, f);
        let inputs: Vec<u8> = (0..n_plus_1 as u8).collect();
        let input = input_simplex(&inputs);
        let union = PseudosphereUnion::single(model.one_round_pseudosphere(&input));
        let claimed = model.claimed_connectivity(n_plus_1 as i32 - 1);
        let proof = MvProver::new().prove_k_connected(&union, claimed);
        assert!(proof.is_ok(), "n+1={n_plus_1} f={f}: {:?}", proof.err());
        // ground truth on the smaller instances
        if n_plus_1 <= 3 {
            let an = ConnectivityAnalyzer::new(&union.realize());
            assert!(
                an.is_k_connected(claimed).is_yes(),
                "homology disagrees: n+1={n_plus_1} f={f} claimed={claimed}"
            );
        }
    }
}

#[test]
fn sync_lemma16_one_round_sweep() {
    // S¹(Sⁿ) is (n-(n-k)-1) = (k-1)-connected when n ≥ 2k
    for (n_plus_1, k) in [(3usize, 1usize), (4, 1), (5, 1), (5, 2)] {
        let n = n_plus_1 - 1;
        if n < 2 * k {
            continue;
        }
        let model = SyncModel::new(n_plus_1, k, k);
        let inputs: Vec<u8> = (0..n_plus_1 as u8).collect();
        let input = input_simplex(&inputs);
        let union = model.one_round_union(&input);
        let claimed = model.claimed_connectivity(n as i32);
        assert_eq!(claimed, k as i32 - 1);
        let proof = MvProver::new().prove_k_connected(&union, claimed);
        assert!(proof.is_ok(), "n+1={n_plus_1} k={k}: {:?}", proof.err());
        if n_plus_1 <= 4 {
            let an = ConnectivityAnalyzer::new(&union.realize());
            assert!(
                an.is_k_connected(claimed).is_yes(),
                "homology disagrees: n+1={n_plus_1} k={k}"
            );
        }
    }
}

#[test]
fn sync_lemma16_tightness() {
    // Figure 3's union is 0-connected but NOT 1-connected: the three
    // unfilled squares carry 1-cycles.
    let model = SyncModel::new(3, 1, 1);
    let input = input_simplex(&[0u8, 1, 2]);
    let union = model.one_round_union(&input);
    let an = ConnectivityAnalyzer::new(&union.realize());
    assert!(an.is_k_connected(0).is_yes());
    assert!(!an.is_k_connected(1).is_yes());
    // and the prover cannot certify 1 (it is honest about its limit)
    assert!(MvProver::new().prove_k_connected(&union, 1).is_err());
}

#[test]
fn semisync_lemma21_one_round_sweep() {
    // M¹(Sⁿ) is (k-1)-connected when n ≥ 2k; sweep microround counts
    for p in [1u32, 2, 3] {
        for (n_plus_1, k) in [(3usize, 1usize), (4, 1)] {
            let model = SemiSyncModel::new(n_plus_1, k, k, p);
            let inputs: Vec<u8> = (0..n_plus_1 as u8).collect();
            let input = input_simplex(&inputs);
            let union = model.one_round_union(&input);
            let claimed = model.claimed_connectivity(n_plus_1 as i32 - 1);
            let proof = MvProver::new().prove_k_connected(&union, claimed);
            assert!(
                proof.is_ok(),
                "p={p} n+1={n_plus_1} k={k}: {:?}",
                proof.err()
            );
            if n_plus_1 == 3 {
                let an = ConnectivityAnalyzer::new(&union.realize());
                assert!(
                    an.is_k_connected(claimed).is_yes(),
                    "homology disagrees: p={p} n+1={n_plus_1} k={k}"
                );
            }
        }
    }
}

#[test]
fn prover_never_overclaims() {
    // wherever the prover certifies k, homology must agree — swept over
    // the sync unions for several k levels including ones beyond the
    // lemma's guarantee.
    let model = SyncModel::new(3, 1, 1);
    let input = input_simplex(&[0u8, 1, 2]);
    let union = model.one_round_union(&input);
    let realized = union.realize();
    let an = ConnectivityAnalyzer::new(&realized);
    for k in -2..=2 {
        if MvProver::new().prove_k_connected(&union, k).is_ok() {
            assert!(
                an.is_k_connected(k).is_yes(),
                "prover overclaimed {k}-connectivity"
            );
        }
    }
}

#[test]
fn proof_objects_replay_paper_induction() {
    // the derivation for Figure 3's union uses Theorem 2 and Corollary 6
    let model = SyncModel::new(3, 1, 1);
    let input = input_simplex(&[0u8, 1, 2]);
    let union = model.one_round_union(&input);
    let proof = MvProver::new().prove_k_connected(&union, 0).unwrap();
    let text = proof.to_string();
    assert!(text.contains("Mayer–Vietoris"));
    assert!(text.contains("Cor. 6"));
    assert!(proof.size() > 5);
    assert_eq!(proof.level(), 0);
}
